#include "mpath/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpath::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.stddev();
}

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid - 1),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (xs[mid - 1] + hi);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double relative_error(double observed, double reference) {
  if (reference == 0.0) return std::abs(observed);
  return std::abs(observed - reference) / std::abs(reference);
}

}  // namespace mpath::util
