#include "mpath/util/fsio.hpp"

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

namespace mpath::util {

void atomic_replace(const std::string& tmp_path,
                    const std::string& final_path) {
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    throw std::runtime_error("atomic_replace: cannot rename " + tmp_path +
                             " -> " + final_path + ": " + ec.message());
  }
}

void write_file_atomic(const std::string& path, std::string_view content) {
  // Unique per process and per call, so concurrent writers to the same
  // destination never share a temporary.
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t tid =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp = path + ".tmp." + std::to_string(tid % 0xFFFF) +
                          "." + std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out) {
      throw std::runtime_error("write_file_atomic: short write to " + tmp);
    }
  }
  atomic_replace(tmp, path);
}

}  // namespace mpath::util
