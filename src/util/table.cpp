#include "mpath/util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace mpath::util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == 'e' || c == 'E' || c == '%' ||
          c == 'x')) {
      return false;
    }
  }
  return true;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    out << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      const auto pad = widths[c] - row[c].size();
      out << ' ';
      const bool right = align_right && looks_numeric(row[c]);
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right) out << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };
  emit_row(headers_, false);
  out << '|';
  for (auto w : widths) out << std::string(w + 2, '-') << '|';
  out << '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string Table::fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace mpath::util
