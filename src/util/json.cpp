#include "mpath/util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mpath::util::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char sep = take();
      if (sep == '}') break;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
    return Value(std::move(obj));
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char sep = take();
      if (sep == ']') break;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
    return Value(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (BMP only; surrogate pairs unsupported — the
          // corpus is ASCII in practice).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
    return out;
  }

  Value parse_number() {
    const std::size_t begin = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) fail("invalid value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = begin;
      fail("bad number '" + token + "'");
    }
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void escape_into(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_into(std::string& out, const Value& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Kind::kNumber: out += format_number(v.as_number()); break;
    case Kind::kString: escape_into(out, v.as_string()); break;
    case Kind::kArray: {
      const Array& arr = v.as_array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        dump_into(out, arr[i], indent, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::kObject: {
      const Object& obj = v.as_object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        escape_into(out, obj[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        dump_into(out, obj[i].second, indent, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

[[noreturn]] void kind_error(const char* want, Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw Error(std::string("json: expected ") + want + ", have " +
              kNames[static_cast<int>(got)]);
}

}  // namespace

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_into(out, *this, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return num_;
}

std::int64_t Value::as_int() const {
  const double v = as_number();
  // Bounds first: casting an out-of-range double to int64 is UB.
  constexpr double kLimit = 9223372036854775808.0;  // 2^63
  if (!(v >= -kLimit && v < kLimit)) {
    throw Error("json: number out of int64 range");
  }
  const auto i = static_cast<std::int64_t>(v);
  if (static_cast<double>(i) != v) {
    throw Error("json: number " + format_number(v) + " is not an integer");
  }
  return i;
}

std::uint64_t Value::as_uint() const {
  const std::int64_t i = as_int();
  if (i < 0) throw Error("json: number is negative");
  return static_cast<std::uint64_t>(i);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

Array& Value::as_array() {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return arr_;
}

Object& Value::as_object() {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  if (const Value* v = find(key)) return *v;
  throw Error("json: missing key '" + std::string(key) + "'");
}

const Value& Value::get_or(std::string_view key, const Value& fallback) const {
  const Value* v = find(key);
  return v != nullptr ? *v : fallback;
}

Value& Value::set(std::string_view key, Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  Object& obj = as_object();
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj.emplace_back(std::string(key), std::move(v));
  return obj.back().second;
}

std::string format_number(double v) {
  if (std::isfinite(v)) {
    constexpr double kExact = 9007199254740992.0;  // 2^53
    if (v == std::floor(v) && std::fabs(v) < kExact) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
      return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
  }
  // JSON has no Inf/NaN; the corpus never stores them, but dump() must not
  // emit invalid documents if one sneaks in.
  throw Error("json: cannot serialize non-finite number");
}

}  // namespace mpath::util::json
