#include "mpath/pipeline/staging.hpp"

namespace mpath::pipeline {

StagingPool::StagingPool(gpusim::GpuRuntime& runtime,
                         std::size_t buffers_per_device,
                         gpusim::Payload payload)
    : runtime_(&runtime),
      capacity_(buffers_per_device == 0 ? 1 : buffers_per_device),
      payload_(payload) {}

StagingPool::Lease& StagingPool::Lease::operator=(Lease&& o) noexcept {
  if (this != &o) {
    release();
    pool_ = std::exchange(o.pool_, nullptr);
    key_ = o.key_;
    buffer_ = std::move(o.buffer_);
  }
  return *this;
}

void StagingPool::Lease::release() {
  if (pool_ != nullptr) {
    pool_->give_back(key_, std::move(buffer_));
    pool_ = nullptr;
  }
}

StagingPool::PerDevice& StagingPool::per_pool(PoolKey key) {
  auto it = pools_.find(key);
  if (it == pools_.end()) {
    it = pools_.emplace(key, PerDevice{}).first;
    it->second.slots =
        std::make_unique<sim::Semaphore>(runtime_->engine(), capacity_);
  }
  return it->second;
}

sim::Task<StagingPool::Lease> StagingPool::acquire(topo::DeviceId device,
                                                   std::size_t bytes,
                                                   topo::DeviceId initiator) {
  const PoolKey key{initiator, device};
  PerDevice& pd = per_pool(key);
  co_await pd.slots->acquire();
  std::unique_ptr<gpusim::DeviceBuffer> buffer;
  if (!pd.free_buffers.empty()) {
    buffer = std::move(pd.free_buffers.back());
    pd.free_buffers.pop_back();
  }
  if (!buffer || buffer->size() < bytes) {
    // Grow: simulated allocation is free; the real engine would size its
    // pre-allocated staging buffers to the pipeline chunk size.
    buffer = std::make_unique<gpusim::DeviceBuffer>(device, bytes, payload_);
  }
  ++pd.leased;
  co_return Lease(this, key, std::move(buffer));
}

StagingPool::Lease StagingPool::try_acquire(topo::DeviceId device,
                                            std::size_t bytes,
                                            topo::DeviceId initiator) {
  const PoolKey key{initiator, device};
  PerDevice& pd = per_pool(key);
  if (!pd.slots->try_acquire()) return Lease{};
  std::unique_ptr<gpusim::DeviceBuffer> buffer;
  if (!pd.free_buffers.empty()) {
    buffer = std::move(pd.free_buffers.back());
    pd.free_buffers.pop_back();
  }
  if (!buffer || buffer->size() < bytes) {
    buffer = std::make_unique<gpusim::DeviceBuffer>(device, bytes, payload_);
  }
  ++pd.leased;
  return Lease(this, key, std::move(buffer));
}

void StagingPool::give_back(PoolKey key,
                            std::unique_ptr<gpusim::DeviceBuffer> buffer) {
  PerDevice& pd = per_pool(key);
  pd.free_buffers.push_back(std::move(buffer));
  --pd.leased;
  pd.slots->release();
}

std::size_t StagingPool::in_use(topo::DeviceId device,
                                topo::DeviceId initiator) const {
  auto it = pools_.find(PoolKey{initiator, device});
  return it == pools_.end() ? 0 : it->second.leased;
}

}  // namespace mpath::pipeline
