#include "mpath/pipeline/channels.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpath/pipeline/collective_graph.hpp"
#include "mpath/pipeline/graph.hpp"
#include "mpath/pipeline/scheduler.hpp"

namespace mpath::pipeline {

namespace {
using PlanClock = std::chrono::steady_clock;

/// Nanoseconds since `t0`, for GraphUseStats::plan_ns sections. Callers
/// must never let a section span a co_await: suspended wall time belongs
/// to other coroutines and the event loop, not to this transfer's planner.
std::uint64_t plan_ns_since(PlanClock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(PlanClock::now() -
                                                           t0)
          .count());
}

ExecPlan direct_plan(std::size_t bytes) {
  return {ExecPath{topo::PathPlan{topo::PathKind::Direct, topo::kInvalidDevice},
                   bytes, 1}};
}

/// Single path for a small segment: prefer the Direct survivor when one is
/// alive (lowest latency, no staging buffers); otherwise fall back to the
/// first survivor, which is the best-ranked staged path in enumeration
/// order. Without the scan, a dead direct path would silently route small
/// remainders over whichever survivor happened to sit first.
std::span<const topo::PathPlan> small_segment_path(
    const std::vector<topo::PathPlan>& alive) {
  for (const topo::PathPlan& p : alive) {
    if (p.kind == topo::PathKind::Direct) return {&p, 1};
  }
  return {alive.data(), 1};
}

/// Marks a scheduler ticket failed if the transfer coroutine unwinds
/// without departing cleanly, so the scheduler stops water-filling against
/// a transfer that no longer exists.
struct ScheduleGuard {
  TransferScheduler* sched = nullptr;
  TransferScheduler::TicketId ticket = TransferScheduler::kInvalidTicket;
  bool armed = true;
  ScheduleGuard() = default;
  ScheduleGuard(const ScheduleGuard&) = delete;
  ScheduleGuard& operator=(const ScheduleGuard&) = delete;
  ~ScheduleGuard() {
    if (armed && sched != nullptr &&
        ticket != TransferScheduler::kInvalidTicket) {
      sched->fail(ticket);
    }
  }
};
}  // namespace

double escalated_slack(const RecoveryOptions& rec, int replans) {
  const double esc = std::min(std::pow(rec.retry_backoff, replans),
                              rec.max_slack_factor);
  return rec.slack * std::max(esc, 1.0);
}

sim::Task<void> SinglePathChannel::transfer(gpusim::DeviceBuffer& dst,
                                            std::size_t dst_offset,
                                            const gpusim::DeviceBuffer& src,
                                            std::size_t src_offset,
                                            std::size_t bytes) {
  co_await engine_->execute(dst, dst_offset, src, src_offset,
                            direct_plan(bytes));
}

ModelDrivenChannel::ModelDrivenChannel(PipelineEngine& engine,
                                       model::PathConfigurator& configurator,
                                       topo::PathPolicy policy,
                                       ModelDrivenOptions options)
    : engine_(&engine),
      configurator_(&configurator),
      policy_(policy),
      options_(options),
      health_(options.health) {}

ModelDrivenChannel::ModelDrivenChannel(PipelineEngine& engine,
                                       TransferScheduler& scheduler,
                                       model::PathConfigurator& configurator,
                                       topo::PathPolicy policy,
                                       ModelDrivenOptions options)
    : engine_(&engine),
      configurator_(&configurator),
      scheduler_(&scheduler),
      policy_(policy),
      options_(options),
      health_(options.health) {}

const std::vector<topo::PathPlan>& ModelDrivenChannel::candidate_paths(
    topo::DeviceId src, topo::DeviceId dst) {
  const auto key = std::make_pair(src, dst);
  auto it = path_cache_.find(key);
  if (it == path_cache_.end()) {
    it = path_cache_
             .emplace(key, topo::enumerate_paths(engine_->runtime().topology(),
                                                 src, dst, policy_))
             .first;
  }
  return it->second;
}

std::uint64_t ModelDrivenChannel::graph_cal_version() const {
  const model::CalibrationStore* cal = configurator_->calibration();
  return cal != nullptr ? cal->version() : 0;
}

std::shared_ptr<TransferGraph> ModelDrivenChannel::find_replayable(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    const std::vector<topo::PathPlan>& paths) {
  std::shared_ptr<TransferGraph> g =
      options_.graphs->lookup(src, dst, bytes, paths, graph_cal_version());
  if (g == nullptr) return nullptr;
  if (g->busy()) {
    // Templates are not reentrant (shared events + staging slot); a second
    // identical transfer in flight takes the uncompiled path.
    ++graph_stats_.busy_fallbacks;
    return nullptr;
  }
  if (options_.health.enabled) {
    for (const topo::PathPlan& plan : g->key_paths()) {
      if (health_.state(src, dst, plan) != PathHealth::kHealthy) {
        // One of the template's candidates is on probation: the classic
        // path would plan around it, so the compiled split is stale. Drop
        // the template; a healthy one is compiled once the path recovers
        // (or the split without it gets compiled fresh).
        ++graph_stats_.health_fallbacks;
        (void)options_.graphs->remove(src, dst, bytes, g->key_paths());
        return nullptr;
      }
    }
  }
  if (scheduler_ != nullptr &&
      g->capacity_epoch() != scheduler_->stats().capacity_events) {
    // Link capacities changed since compile (sever/degrade/restore): the
    // joint solve could pick a different split now. Recompile.
    ++graph_stats_.epoch_fallbacks;
    (void)options_.graphs->remove(src, dst, bytes, g->key_paths());
    return nullptr;
  }
  return g;
}

std::shared_ptr<TransferGraph> ModelDrivenChannel::compile_template(
    topo::DeviceId src, topo::DeviceId dst,
    const model::TransferConfig& config) {
  std::shared_ptr<TransferGraph> g =
      engine_->compile_graph(src, dst, config);
  if (g == nullptr) {
    ++graph_stats_.compile_failures;
    return nullptr;
  }
  ++graph_stats_.compiles;
  if (scheduler_ != nullptr) {
    g->set_capacity_epoch(scheduler_->stats().capacity_events);
  }
  options_.graphs->insert(g, graph_cal_version());
  return g;
}

void ModelDrivenChannel::attach_chain(ChainController* chain) {
  if (chain != nullptr && options_.recovery.enabled) {
    throw std::invalid_argument(
        "ModelDrivenChannel: cannot attach a chain controller with recovery "
        "enabled");
  }
  chain_ = chain;
}

sim::Task<void> ModelDrivenChannel::transfer(gpusim::DeviceBuffer& dst,
                                             std::size_t dst_offset,
                                             const gpusim::DeviceBuffer& src,
                                             std::size_t src_offset,
                                             std::size_t bytes) {
  if (options_.recovery.enabled) {
    co_await transfer_with_recovery(dst, dst_offset, src, src_offset, bytes);
    co_return;
  }
  // Collective chain interplay: the transport tap staged what this message
  // is — a capture-iteration step (record its config afterwards) or a
  // replayable step of a sealed chain (claim its template + batch ticket
  // and skip configuration entirely).
  const PlanClock::time_point plan_t0 = PlanClock::now();
  ChainController::Pending pend;
  if (chain_ != nullptr) pend = chain_->take_pending();
  if (pend.replay) {
    ChainController::Claim claim = chain_->claim_step(pend);
    if (claim.graph != nullptr) {
      const double t0 = engine_->runtime().engine().now();
      ScheduleGuard guard;
      guard.sched = scheduler_;
      guard.ticket = claim.ticket;
      last_config_ = claim.graph->config();
      // The recalibrator needs the configuration after the replay resumes,
      // by which point last_config_ may belong to another in-flight
      // transfer — only then is a coroutine-local copy worth paying for.
      std::optional<model::TransferConfig> cfg;
      if (options_.recalibrator != nullptr) cfg = claim.graph->config();
      graph_stats_.plan_ns += plan_ns_since(plan_t0);
      (void)co_await engine_->replay(std::move(claim.graph), dst, dst_offset,
                                     src, src_offset, {});
      if (scheduler_ != nullptr &&
          claim.ticket != TransferScheduler::kInvalidTicket) {
        const PlanClock::time_point depart_t0 = PlanClock::now();
        scheduler_->depart(claim.ticket);
        graph_stats_.plan_ns += plan_ns_since(depart_t0);
      }
      guard.armed = false;
      if (options_.recalibrator != nullptr) {
        options_.recalibrator->observe(src.device(), dst.device(), *cfg,
                                       engine_->runtime().engine().now() - t0);
      }
      co_return;
    }
    // Unclaimable (busy template, contended round, passthrough, or the
    // chain just died): fall through to the normal path.
  }
  graph_stats_.plan_ns += plan_ns_since(plan_t0);
  const UncapturedOutcome unc =
      co_await transfer_uncaptured(dst, dst_offset, src, src_offset, bytes);
  if (pend.capture) {
    // Capture bookkeeping — the last leave seals the chain and compiles
    // every step's template, so this section carries the one-off capture
    // cost the steady-state claim path amortises away.
    const PlanClock::time_point record_t0 = PlanClock::now();
    chain_->record_step(pend, unc.reproducible && unc.config.has_value()
                                  ? &*unc.config
                                  : nullptr);
    graph_stats_.plan_ns += plan_ns_since(record_t0);
  }
}

sim::Task<ModelDrivenChannel::UncapturedOutcome>
ModelDrivenChannel::transfer_uncaptured(gpusim::DeviceBuffer& dst,
                                        std::size_t dst_offset,
                                        const gpusim::DeviceBuffer& src,
                                        std::size_t src_offset,
                                        std::size_t bytes) {
  if (bytes < options_.min_multipath_bytes) {
    co_await engine_->execute(dst, dst_offset, src, src_offset,
                              direct_plan(bytes));
    co_return UncapturedOutcome{};  // no multipath config to reproduce
  }
  const PlanClock::time_point u_t0 = PlanClock::now();
  const auto& paths = candidate_paths(src.device(), dst.device());
  const double t0 = engine_->runtime().engine().now();
  // Everything below keeps a coroutine-local copy of the chosen
  // configuration (`cfg`): concurrent transfers interleave at every
  // co_await, so last_config_ only reports "most recent transfer" and must
  // never be read back after a suspension.
  if (scheduler_ != nullptr) {
    // Compiled fast path: a cached template admitted as a replay skips the
    // joint solve and plan construction entirely.
    if (options_.graphs != nullptr) {
      if (auto g = find_replayable(src.device(), dst.device(), bytes, paths)) {
        TransferScheduler::Admission adm = scheduler_->admit_replay(
            src.device(), dst.device(), bytes, paths, g->config());
        if (adm.ticket != TransferScheduler::kInvalidTicket) {
          ScheduleGuard guard;
          guard.sched = scheduler_;
          guard.ticket = adm.ticket;
          model::TransferConfig cfg = std::move(adm.config);
          last_config_ = cfg;
          ++graph_stats_.replays;
          graph_stats_.plan_ns += plan_ns_since(u_t0);
          (void)co_await engine_->replay(std::move(g), dst, dst_offset, src,
                                         src_offset, {});
          const PlanClock::time_point d_t0 = PlanClock::now();
          scheduler_->depart(adm.ticket);
          graph_stats_.plan_ns += plan_ns_since(d_t0);
          guard.armed = false;
          if (options_.recalibrator != nullptr) {
            options_.recalibrator->observe(
                src.device(), dst.device(), cfg,
                engine_->runtime().engine().now() - t0);
          }
          co_return UncapturedOutcome{true, std::move(cfg)};
        }
        ++graph_stats_.contended_rejects;
      }
    }
    TransferScheduler::Admission adm =
        scheduler_->admit(src.device(), dst.device(), bytes, paths);
    ScheduleGuard guard;
    guard.sched = scheduler_;
    guard.ticket = adm.ticket;
    // Only uncontended admissions compile: their split is reproducible, so
    // a later admit_replay can register the identical ledger entry.
    if (options_.graphs != nullptr && adm.uncontended) {
      if (auto g = compile_template(src.device(), dst.device(), adm.config)) {
        model::TransferConfig cfg = std::move(adm.config);
        last_config_ = cfg;
        ++graph_stats_.replays_fresh;
        graph_stats_.plan_ns += plan_ns_since(u_t0);
        (void)co_await engine_->replay(std::move(g), dst, dst_offset, src,
                                       src_offset, {});
        const PlanClock::time_point d_t0 = PlanClock::now();
        scheduler_->depart(adm.ticket);
        graph_stats_.plan_ns += plan_ns_since(d_t0);
        guard.armed = false;
        if (options_.recalibrator != nullptr) {
          options_.recalibrator->observe(
              src.device(), dst.device(), cfg,
              engine_->runtime().engine().now() - t0);
        }
        co_return UncapturedOutcome{true, std::move(cfg)};
      }
    }
    const bool uncontended = adm.uncontended;
    model::TransferConfig cfg = std::move(adm.config);
    ExecPlan plan;
    plan.reserve(cfg.paths.size());
    for (const auto& share : cfg.paths) {
      plan.push_back(ExecPath{share.plan, share.bytes, share.chunks});
    }
    last_config_ = cfg;
    graph_stats_.plan_ns += plan_ns_since(u_t0);
    co_await engine_->execute(dst, dst_offset, src, src_offset,
                              std::move(plan));
    const PlanClock::time_point d_t0 = PlanClock::now();
    scheduler_->depart(adm.ticket);
    graph_stats_.plan_ns += plan_ns_since(d_t0);
    guard.armed = false;
    if (options_.recalibrator != nullptr) {
      options_.recalibrator->observe(src.device(), dst.device(), cfg,
                                     engine_->runtime().engine().now() - t0);
    }
    // An uncontended joint solve is the solo configuration — reproducible;
    // a contended one depends on the live flows at this exact instant.
    co_return UncapturedOutcome{uncontended, std::move(cfg)};
  }
  if (options_.graphs != nullptr) {
    if (auto g = find_replayable(src.device(), dst.device(), bytes, paths)) {
      model::TransferConfig cfg = g->config();
      last_config_ = cfg;
      ++graph_stats_.replays;
      graph_stats_.plan_ns += plan_ns_since(u_t0);
      (void)co_await engine_->replay(std::move(g), dst, dst_offset, src,
                                     src_offset, {});
      if (options_.recalibrator != nullptr) {
        options_.recalibrator->observe(src.device(), dst.device(), cfg,
                                       engine_->runtime().engine().now() - t0);
      }
      co_return UncapturedOutcome{true, std::move(cfg)};
    }
  }
  // Copy out of the configurator's cache: an LRU eviction during the
  // transfer below must not invalidate what we executed (or report).
  model::TransferConfig cfg =
      configurator_->configure(src.device(), dst.device(), bytes, paths);
  last_config_ = cfg;
  if (options_.graphs != nullptr) {
    if (auto g = compile_template(src.device(), dst.device(), cfg)) {
      ++graph_stats_.replays_fresh;
      graph_stats_.plan_ns += plan_ns_since(u_t0);
      (void)co_await engine_->replay(std::move(g), dst, dst_offset, src,
                                     src_offset, {});
      if (options_.recalibrator != nullptr) {
        options_.recalibrator->observe(src.device(), dst.device(), cfg,
                                       engine_->runtime().engine().now() - t0);
      }
      co_return UncapturedOutcome{true, std::move(cfg)};
    }
  }
  ExecPlan plan;
  plan.reserve(cfg.paths.size());
  for (const auto& share : cfg.paths) {
    plan.push_back(ExecPath{share.plan, share.bytes, share.chunks});
  }
  graph_stats_.plan_ns += plan_ns_since(u_t0);
  co_await engine_->execute(dst, dst_offset, src, src_offset,
                            std::move(plan));
  if (options_.recalibrator != nullptr) {
    options_.recalibrator->observe(src.device(), dst.device(), cfg,
                                   engine_->runtime().engine().now() - t0);
  }
  // Solo configuration: deterministic given calibration.
  co_return UncapturedOutcome{true, std::move(cfg)};
}

sim::Task<void> ModelDrivenChannel::transfer_with_recovery(
    gpusim::DeviceBuffer& dst, std::size_t dst_offset,
    const gpusim::DeviceBuffer& src, std::size_t src_offset,
    std::size_t bytes) {
  sim::Engine& eng = engine_->runtime().engine();
  const topo::Topology& topo = engine_->runtime().topology();
  const double t0 = eng.now();
  const RecoveryOptions& rec = options_.recovery;
  const bool use_health = options_.health.enabled;
  const topo::DeviceId sdev = src.device();
  const topo::DeviceId ddev = dst.device();

  // Full candidate set for this pair. Without health tracking, `alive` is
  // the PR 2 survivor set: paths whose watchdog fires are removed for the
  // rest of this transfer. With health tracking, the candidate set is
  // re-partitioned per attempt from the channel-lifetime state machine, so
  // a path can come back within (and across) transfers.
  const std::vector<topo::PathPlan>& candidates =
      candidate_paths(sdev, ddev);
  std::vector<topo::PathPlan> alive = candidates;
  std::vector<topo::PathPlan> active;
  std::vector<topo::PathPlan> probe_due;
  std::vector<topo::PathPlan> probes_issued;
  std::vector<std::string> dead_names;

  // Undelivered message segments (offsets relative to the transfer). The
  // initial segment is the whole message; a partially delivered path
  // contributes its undelivered suffix back to the queue.
  struct Seg {
    std::size_t off;
    std::uint64_t bytes;
  };
  std::vector<Seg> todo{{0, bytes}};
  int replans = 0;
  double first_timeout = -1.0;
  ScheduleGuard guard;
  guard.sched = scheduler_;

  while (!todo.empty()) {
    const Seg seg = todo.back();
    todo.pop_back();
    const std::vector<topo::PathPlan>* pool = &alive;
    if (use_health) {
      health_.partition(sdev, ddev, candidates, eng.now(), &active,
                        &probe_due);
      if (active.empty()) {
        // Nothing healthy. Plan over whatever is due a probe; if even
        // those are cooling down, force the full candidate set rather
        // than stall — the attempt stays bounded by max_replans.
        active = probe_due.empty() ? candidates : std::move(probe_due);
        probe_due.clear();
      }
      pool = &active;
    }
    // Small segments stay single-path (on the Direct survivor when alive,
    // else the first survivor), matching the non-recovery channel's
    // min_multipath threshold.
    const std::span<const topo::PathPlan> use =
        seg.bytes >= options_.min_multipath_bytes
            ? std::span<const topo::PathPlan>(*pool)
            : small_segment_path(*pool);
    // Compiled fast path, first whole-message attempt only: replans have
    // shrunken candidate sets and partial segments, which a frozen template
    // cannot express. The lookup runs whenever the request shape fits —
    // find_replayable vetoes (and evicts) templates with any non-healthy
    // candidate, so a hit guarantees the health-partitioned pool IS the
    // full candidate set and no probe carving is pending.
    const bool replay_shape =
        options_.graphs != nullptr && replans == 0 && seg.off == 0 &&
        seg.bytes == bytes && seg.bytes >= options_.min_multipath_bytes;
    // Compiling additionally requires the planned pool to be the whole
    // candidate set with no probe slices: a template is keyed under (and
    // replays) the full-tuple plan only — a subset config would compile an
    // unfindable template and strand its staging slot.
    const bool compile_eligible = replay_shape && probe_due.empty() &&
                                  pool->size() == candidates.size();
    std::shared_ptr<TransferGraph> graph;
    bool graph_from_cache = false;
    if (replay_shape) {
      graph = find_replayable(sdev, ddev, seg.bytes, candidates);
      graph_from_cache = graph != nullptr;
    }
    // By-value snapshot, NOT a reference into the configurator's LRU cache:
    // this config is read again after co_await execute_monitored below, and
    // any concurrent transfer on the same configurator could evict the
    // entry mid-await — a use-after-free with a shared bounded cache.
    model::TransferConfig config;
    bool uncontended = scheduler_ == nullptr;
    if (graph != nullptr && scheduler_ != nullptr) {
      TransferScheduler::Admission adm = scheduler_->admit_replay(
          sdev, ddev, seg.bytes, candidates, graph->config());
      if (adm.ticket == TransferScheduler::kInvalidTicket) {
        ++graph_stats_.contended_rejects;
        graph = nullptr;
      } else {
        guard.ticket = adm.ticket;
        config = std::move(adm.config);
      }
    } else if (graph != nullptr) {
      config = graph->config();
    }
    if (graph == nullptr) {
      if (scheduler_ != nullptr) {
        if (guard.ticket == TransferScheduler::kInvalidTicket) {
          TransferScheduler::Admission adm =
              scheduler_->admit(src.device(), dst.device(), seg.bytes, use);
          guard.ticket = adm.ticket;
          config = std::move(adm.config);
          uncontended = adm.uncontended;
        } else {
          config = scheduler_->replan(guard.ticket, seg.bytes, use);
        }
      } else {
        config = configurator_->configure_over(src.device(), dst.device(),
                                               seg.bytes, use);
      }
      if (compile_eligible && uncontended) {
        graph = compile_template(sdev, ddev, config);
      }
    }
    last_config_ = config;
    // Watchdog slack for this attempt: the base factor escalates per
    // re-plan (bounded exponential backoff), and with health tracking each
    // path compounds its own failure-streak multiplier on top.
    const double slack = escalated_slack(rec, replans);
    ExecPlan plan;
    PathWatchList watch;
    if (graph == nullptr) plan.reserve(config.paths.size());
    watch.reserve(config.paths.size());
    for (const auto& share : config.paths) {
      // A replayed template carries its own precompiled plan; only the
      // watchdog deadlines are built per attempt (identically either way).
      if (graph == nullptr) {
        plan.push_back(ExecPath{share.plan, share.bytes, share.chunks});
      }
      // Watchdog deadline: model-predicted completion time of this share
      // times the slack factor, floored so that noise on tiny shares
      // cannot trip a healthy path.
      const double mult =
          use_health ? health_.slack_multiplier(sdev, ddev, share.plan) : 1.0;
      watch.push_back(PathWatch{
          share.bytes > 0
              ? std::max(rec.min_deadline_s,
                         slack * mult * share.predicted_time)
              : 0.0});
    }
    // Probe slices: paths on probation ride along with a small cut of the
    // anchor's share. A probe that delivers readmits its path into the
    // planned set from the next attempt on; one that times out only costs
    // its own (floored) deadline, never the planned paths' bytes. (Never
    // reached on a graph attempt: eligibility requires no pending probes.)
    probes_issued.clear();
    if (graph == nullptr && use_health &&
        seg.bytes >= options_.min_multipath_bytes) {
      const std::uint64_t pb = health_.probe_bytes(seg.bytes);
      for (const topo::PathPlan& pp : probe_due) {
        // Keep the anchor meaningfully larger than what it donates.
        if (plan.empty() || plan.front().bytes < 2 * pb) break;
        plan.front().bytes -= pb;
        const model::TransferConfig probe_cfg = configurator_->compute_config(
            sdev, ddev, pb, std::span<const topo::PathPlan>(&pp, 1));
        const double mult = health_.slack_multiplier(sdev, ddev, pp);
        plan.push_back(ExecPath{pp, pb, probe_cfg.paths[0].chunks});
        watch.push_back(PathWatch{
            std::max(rec.min_deadline_s,
                     slack * mult * probe_cfg.predicted_time)});
        probes_issued.push_back(pp);
        health_.on_probe_issued(sdev, ddev, pp);
      }
    }
    TransferOutcome out;
    if (graph != nullptr) {
      if (graph_from_cache) {
        ++graph_stats_.replays;
      } else {
        ++graph_stats_.replays_fresh;
      }
      out = co_await engine_->replay(std::move(graph), dst,
                                     dst_offset + seg.off, src,
                                     src_offset + seg.off, std::move(watch));
    } else {
      out = co_await engine_->execute_monitored(
          dst, dst_offset + seg.off, src, src_offset + seg.off,
          std::move(plan), std::move(watch));
    }
    if (out.complete) {
      if (use_health) {
        for (const auto& share : config.paths) {
          if (share.bytes > 0) health_.on_success(sdev, ddev, share.plan,
                                                  eng.now());
        }
        for (const topo::PathPlan& pp : probes_issued) {
          health_.on_success(sdev, ddev, pp, eng.now());
        }
      }
      continue;
    }

    if (first_timeout < 0.0) first_timeout = eng.now();
    // Mark timed-out paths (dropped from `alive`, or demoted in the health
    // state machine) and queue the undelivered remainder of every slice —
    // including probe slices, whose bytes came out of the anchor's share.
    std::size_t path_off = seg.off;
    for (std::size_t i = 0; i < out.paths.size(); ++i) {
      const PathOutcome& po = out.paths[i];
      const topo::PathPlan dead =
          i < config.paths.size()
              ? config.paths[i].plan
              : probes_issued[i - config.paths.size()];
      if (po.timed_out) {
        ++stats_.path_timeouts;
        dead_names.push_back(topo::describe(dead, topo));
        if (use_health) {
          health_.on_timeout(sdev, ddev, dead, eng.now());
        } else {
          std::erase_if(alive, [&dead](const topo::PathPlan& p) {
            return p.kind == dead.kind && p.stage == dead.stage;
          });
        }
      } else if (use_health && po.bytes > 0 &&
                 po.bytes_delivered >= po.bytes) {
        // Fully delivered its slice even though the transfer as a whole
        // needs a re-plan: that path is healthy (probes readmit here). A
        // slice cancelled mid-flight by the abort proves nothing and
        // changes no state.
        health_.on_success(sdev, ddev, dead, eng.now());
      }
      if (po.bytes_delivered < po.bytes) {
        todo.push_back(Seg{path_off + po.bytes_delivered,
                           po.bytes - po.bytes_delivered});
      }
      path_off += po.bytes;
    }
    ++replans;
    if ((!use_health && alive.empty()) || replans > rec.max_replans) {
      ++stats_.transfers_failed;
      std::uint64_t undelivered = 0;
      for (const Seg& s : todo) undelivered += s.bytes;
      std::string detail = "dead paths:";
      for (const std::string& n : dead_names) detail += " " + n;
      gpusim::TransferError::Info info;
      info.detail = detail;
      info.bytes_requested = bytes;
      info.bytes_delivered = bytes - static_cast<std::size_t>(undelivered);
      info.elapsed_s = eng.now() - t0;
      info.retries = replans;
      throw gpusim::TransferError(
          "ModelDrivenChannel: transfer failed (" + detail + "; " +
              std::to_string(info.bytes_delivered) + "/" +
              std::to_string(bytes) + " bytes delivered)",
          std::move(info));
    }
    ++stats_.replans;
  }
  if (scheduler_ != nullptr &&
      guard.ticket != TransferScheduler::kInvalidTicket) {
    scheduler_->depart(guard.ticket);
    guard.armed = false;
  }
  if (first_timeout >= 0.0) {
    ++stats_.transfers_recovered;
    stats_.recovery_time_s += eng.now() - first_timeout;
  } else if (options_.recalibrator != nullptr && last_config_.has_value()) {
    // Clean single-plan completion: feed (predicted, actual) back for
    // online alpha/beta refinement. Transfers that tripped a watchdog are
    // excluded — a stall is a fault for the health machine, not drift.
    options_.recalibrator->observe(sdev, ddev, *last_config_,
                                   eng.now() - t0);
  }
}

StaticPlanChannel::StaticPlanChannel(PipelineEngine& engine, StaticPlan plan,
                                     std::size_t min_multipath_bytes)
    : engine_(&engine),
      plan_(std::move(plan)),
      min_multipath_bytes_(min_multipath_bytes) {
  if (plan_.paths.empty() ||
      plan_.paths.size() != plan_.fractions.size() ||
      plan_.paths.size() != plan_.chunks.size()) {
    throw std::invalid_argument("StaticPlanChannel: inconsistent plan");
  }
  if (plan_.paths.front().kind != topo::PathKind::Direct) {
    throw std::invalid_argument(
        "StaticPlanChannel: first path must be direct");
  }
  double sum = 0.0;
  for (double f : plan_.fractions) {
    if (f < 0.0) {
      throw std::invalid_argument("StaticPlanChannel: negative fraction");
    }
    sum += f;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument("StaticPlanChannel: fractions must sum to 1");
  }
}

sim::Task<void> StaticPlanChannel::transfer(gpusim::DeviceBuffer& dst,
                                            std::size_t dst_offset,
                                            const gpusim::DeviceBuffer& src,
                                            std::size_t src_offset,
                                            std::size_t bytes) {
  if (bytes < min_multipath_bytes_) {
    co_await engine_->execute(dst, dst_offset, src, src_offset,
                              direct_plan(bytes));
    co_return;
  }
  ExecPlan plan;
  plan.reserve(plan_.paths.size());
  std::uint64_t assigned = 0;
  for (std::size_t i = 1; i < plan_.paths.size(); ++i) {
    const auto share = static_cast<std::uint64_t>(
        std::floor(plan_.fractions[i] * static_cast<double>(bytes)));
    assigned += share;
    plan.push_back(ExecPath{plan_.paths[i], share, plan_.chunks[i]});
  }
  // The direct path absorbs the rounding remainder, as in Algorithm 1.
  plan.insert(plan.begin(),
              ExecPath{plan_.paths[0], bytes - assigned, plan_.chunks[0]});
  co_await engine_->execute(dst, dst_offset, src, src_offset,
                            std::move(plan));
}

}  // namespace mpath::pipeline
