#include "mpath/pipeline/channels.hpp"

#include <cmath>
#include <stdexcept>

namespace mpath::pipeline {

namespace {
ExecPlan direct_plan(std::size_t bytes) {
  return {ExecPath{topo::PathPlan{topo::PathKind::Direct, topo::kInvalidDevice},
                   bytes, 1}};
}
}  // namespace

sim::Task<void> SinglePathChannel::transfer(gpusim::DeviceBuffer& dst,
                                            std::size_t dst_offset,
                                            const gpusim::DeviceBuffer& src,
                                            std::size_t src_offset,
                                            std::size_t bytes) {
  co_await engine_->execute(dst, dst_offset, src, src_offset,
                            direct_plan(bytes));
}

ModelDrivenChannel::ModelDrivenChannel(PipelineEngine& engine,
                                       model::PathConfigurator& configurator,
                                       topo::PathPolicy policy,
                                       ModelDrivenOptions options)
    : engine_(&engine),
      configurator_(&configurator),
      policy_(policy),
      options_(options) {}

sim::Task<void> ModelDrivenChannel::transfer(gpusim::DeviceBuffer& dst,
                                             std::size_t dst_offset,
                                             const gpusim::DeviceBuffer& src,
                                             std::size_t src_offset,
                                             std::size_t bytes) {
  if (bytes < options_.min_multipath_bytes) {
    co_await engine_->execute(dst, dst_offset, src, src_offset,
                              direct_plan(bytes));
    co_return;
  }
  const auto key = std::make_pair(src.device(), dst.device());
  auto it = path_cache_.find(key);
  if (it == path_cache_.end()) {
    it = path_cache_
             .emplace(key, topo::enumerate_paths(
                               engine_->runtime().topology(), src.device(),
                               dst.device(), policy_))
             .first;
  }
  const auto& config =
      configurator_->configure(src.device(), dst.device(), bytes, it->second);
  last_config_ = config;
  ExecPlan plan;
  plan.reserve(config.paths.size());
  for (const auto& share : config.paths) {
    plan.push_back(ExecPath{share.plan, share.bytes, share.chunks});
  }
  co_await engine_->execute(dst, dst_offset, src, src_offset,
                            std::move(plan));
}

StaticPlanChannel::StaticPlanChannel(PipelineEngine& engine, StaticPlan plan,
                                     std::size_t min_multipath_bytes)
    : engine_(&engine),
      plan_(std::move(plan)),
      min_multipath_bytes_(min_multipath_bytes) {
  if (plan_.paths.empty() ||
      plan_.paths.size() != plan_.fractions.size() ||
      plan_.paths.size() != plan_.chunks.size()) {
    throw std::invalid_argument("StaticPlanChannel: inconsistent plan");
  }
  if (plan_.paths.front().kind != topo::PathKind::Direct) {
    throw std::invalid_argument(
        "StaticPlanChannel: first path must be direct");
  }
  double sum = 0.0;
  for (double f : plan_.fractions) {
    if (f < 0.0) {
      throw std::invalid_argument("StaticPlanChannel: negative fraction");
    }
    sum += f;
  }
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument("StaticPlanChannel: fractions must sum to 1");
  }
}

sim::Task<void> StaticPlanChannel::transfer(gpusim::DeviceBuffer& dst,
                                            std::size_t dst_offset,
                                            const gpusim::DeviceBuffer& src,
                                            std::size_t src_offset,
                                            std::size_t bytes) {
  if (bytes < min_multipath_bytes_) {
    co_await engine_->execute(dst, dst_offset, src, src_offset,
                              direct_plan(bytes));
    co_return;
  }
  ExecPlan plan;
  plan.reserve(plan_.paths.size());
  std::uint64_t assigned = 0;
  for (std::size_t i = 1; i < plan_.paths.size(); ++i) {
    const auto share = static_cast<std::uint64_t>(
        std::floor(plan_.fractions[i] * static_cast<double>(bytes)));
    assigned += share;
    plan.push_back(ExecPath{plan_.paths[i], share, plan_.chunks[i]});
  }
  // The direct path absorbs the rounding remainder, as in Algorithm 1.
  plan.insert(plan.begin(),
              ExecPath{plan_.paths[0], bytes - assigned, plan_.chunks[0]});
  co_await engine_->execute(dst, dst_offset, src, src_offset,
                            std::move(plan));
}

}  // namespace mpath::pipeline
