#include "mpath/pipeline/graph.hpp"

#include <algorithm>
#include <cmath>

namespace mpath::pipeline {

TransferGraph::~TransferGraph() {
  // Return reserved events to the runtime free list; staging leases release
  // through their own destructors. Safe mid-replay only because replays
  // hold the graph by shared_ptr — destruction here means no frame is
  // walking the ops.
  if (runtime_ == nullptr) return;
  for (Path& p : paths_) {
    for (gpusim::EventId ev : p.fwd_events) runtime_->release_event(ev);
    for (gpusim::EventId ev : p.bwd_events) runtime_->release_event(ev);
  }
}

bool TransferGraph::patch(std::uint64_t new_bytes) {
  if (!valid() || new_bytes == 0) return false;
  if (new_bytes == total_bytes_) return true;
  const double n = static_cast<double>(new_bytes);
  const std::size_t p = config_.paths.size();

  // Re-derive integer byte shares from the compiled thetas, exactly as
  // config_from_theta does: floor for every non-anchor path, remainder to
  // the anchor.
  util::SmallVec<std::uint64_t, 4> share_bytes;
  share_bytes.resize(p);
  std::uint64_t assigned = 0;
  for (std::size_t i = 1; i < p; ++i) {
    share_bytes[i] = static_cast<std::uint64_t>(
        std::floor(config_.paths[i].theta * n));
    assigned += share_bytes[i];
  }
  if (assigned > new_bytes) return false;  // thetas cannot over-assign
  share_bytes[0] = new_bytes - assigned;

  // Feasibility against the compiled resources: every share that now
  // carries bytes must have compiled issue state, and no staged chunk may
  // outgrow its staging slot.
  util::SmallVec<Path*, 4> by_plan_index;
  by_plan_index.resize(p);
  for (std::size_t i = 0; i < p; ++i) by_plan_index[i] = nullptr;
  for (Path& path : paths_) by_plan_index[path.plan_index] = &path;
  for (std::size_t i = 0; i < p; ++i) {
    if (share_bytes[i] == 0) continue;
    const Path* path = by_plan_index[i];
    if (path == nullptr) return false;
    if (path->staged) {
      const std::uint64_t k = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(std::max(config_.paths[i].chunks, 1)),
          share_bytes[i]);
      const std::uint64_t max_chunk =
          share_bytes[i] / k + (share_bytes[i] % k != 0 ? 1 : 0);
      if (max_chunk > path->slot_bytes) return false;
      if (k > 16 && k > static_cast<std::uint64_t>(path->chunks)) {
        // Would need more events than were reserved at compile time.
        if (k > path->fwd_events.size()) return false;
      }
    }
  }

  // Commit: refresh the config's shares and predicted times, then the
  // per-path issue state and the op list.
  std::size_t offset = 0;
  config_.total_bytes = new_bytes;
  config_.predicted_time = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    model::PathShare& share = config_.paths[i];
    share.bytes = share_bytes[i];
    if (i == 0) share.theta = static_cast<double>(share.bytes) / n;
    share.predicted_time =
        share.bytes > 0 ? share.terms.time(share.theta, n) : 0.0;
    config_.predicted_time =
        std::max(config_.predicted_time, share.predicted_time);
    if (Path* path = by_plan_index[i]; path != nullptr) {
      path->bytes = share.bytes;
      path->offset = offset;
      path->chunks =
          share.bytes > 0
              ? static_cast<int>(std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(std::max(share.chunks, 1)),
                    share.bytes))
              : 0;
    }
    offset += share.bytes;
  }
  total_bytes_ = new_bytes;
  rebuild_ops();
  return true;
}

void TransferGraph::rebuild_ops() {
  ops_.clear();
  int max_rounds = 0;
  for (Path& p : paths_) {
    p.chunk_offsets.clear();
    p.chunk_sizes.clear();
    if (p.bytes == 0 || p.chunks < 1) continue;
    const auto k = static_cast<std::uint64_t>(p.chunks);
    const std::uint64_t base = p.bytes / k;
    const std::uint64_t rem = p.bytes % k;
    std::size_t chunk_off = 0;
    for (std::uint64_t c = 0; c < k; ++c) {
      const std::size_t sz =
          static_cast<std::size_t>(base + (c < rem ? 1 : 0));
      p.chunk_offsets.push_back(chunk_off);
      p.chunk_sizes.push_back(sz);
      chunk_off += sz;
    }
    max_rounds = std::max(max_rounds, p.chunks);
  }
  // Flatten the interleaved issue loop: chunk r of every path before chunk
  // r+1 of any. The first op of each (path, chunk) group is the chunk head
  // — the replay driver's watchdog check point.
  for (int r = 0; r < max_rounds; ++r) {
    for (std::size_t pidx = 0; pidx < paths_.size(); ++pidx) {
      const Path& p = paths_[pidx];
      if (static_cast<std::size_t>(r) >= p.chunk_sizes.size()) continue;
      const auto path16 = static_cast<std::uint16_t>(pidx);
      const auto chunk16 = static_cast<std::uint16_t>(r);
      auto push = [this, path16, chunk16](GraphOp::Kind kind, bool head) {
        ops_.push_back(GraphOp{kind, head, path16, chunk16});
      };
      if (!p.staged) {
        push(GraphOp::Kind::kCopyDirect, true);
        continue;
      }
      if (r >= 2) push(GraphOp::Kind::kWaitSlot, true);
      push(GraphOp::Kind::kCopyToStage, r < 2);
      push(GraphOp::Kind::kRecordFwd, false);
      push(GraphOp::Kind::kWaitFwd, false);
      if (p.extra_sync_s > 0.0) push(GraphOp::Kind::kStageDelay, false);
      push(GraphOp::Kind::kCopyFromStage, false);
      push(GraphOp::Kind::kRecordBwd, false);
    }
  }
}

GraphCache::GraphCache(GraphCacheOptions options) : options_(options) {}

std::uint64_t GraphCache::cache_key(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) const {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(src);
  mix(dst);
  mix(bytes);
  for (const auto& p : paths) {
    mix(static_cast<std::uint64_t>(p.kind) + 1);
    mix(p.stage);
  }
  if (options_.key_bits < 64) {
    const int bits = std::max(options_.key_bits, 1);
    h &= (1ull << bits) - 1ull;
  }
  return h;
}

bool GraphCache::entry_matches(const Entry& e, topo::DeviceId src,
                               topo::DeviceId dst, std::uint64_t bytes,
                               std::span<const topo::PathPlan> paths) {
  const TransferGraph& g = *e.graph;
  const std::span<const topo::PathPlan> have = g.key_paths();
  return g.src_device() == src && g.dst_device() == dst &&
         g.total_bytes() == bytes &&
         std::equal(have.begin(), have.end(), paths.begin(), paths.end());
}

GraphPtr GraphCache::lookup(topo::DeviceId src, topo::DeviceId dst,
                            std::uint64_t bytes,
                            std::span<const topo::PathPlan> paths,
                            std::uint64_t cal_version) {
  const std::uint64_t key = cache_key(src, dst, bytes, paths);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (!entry_matches(it->second, src, dst, bytes, paths)) {
    // A different tuple hashed here; the resident template is someone
    // else's transfer. Miss (the caller's insert will replace it).
    ++stats_.collisions;
    ++stats_.misses;
    return nullptr;
  }
  if (it->second.cal_version != cal_version) {
    // Compiled under a superseded calibration snapshot: its theta split
    // reflects old alpha/beta. Drop so the caller recompiles.
    ++stats_.invalidations;
    ++stats_.misses;
    lru_.erase(it->second.recency);
    map_.erase(it);
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.recency);
  return it->second.graph;
}

void GraphCache::insert(GraphPtr graph, std::uint64_t cal_version) {
  if (graph == nullptr) return;
  const std::uint64_t key = cache_key(graph->src_device(),
                                      graph->dst_device(),
                                      graph->total_bytes(),
                                      graph->key_paths());
  std::lock_guard<std::mutex> lock(mutex_);
  Entry fresh;
  fresh.graph = std::move(graph);
  fresh.cal_version = cal_version;
  auto it = map_.find(key);
  if (it != map_.end()) {
    // Replace in place (collision or re-insert): the key already owns an
    // LRU node — keep its iterator across the assignment.
    const auto node = it->second.recency;
    lru_.splice(lru_.begin(), lru_, node);
    it->second = std::move(fresh);
    it->second.recency = node;
  } else {
    lru_.push_front(key);
    it = map_.emplace(key, std::move(fresh)).first;
    it->second.recency = lru_.begin();
  }
  ++stats_.inserts;
  while (options_.capacity > 0 && map_.size() > options_.capacity) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

bool GraphCache::remove(topo::DeviceId src, topo::DeviceId dst,
                        std::uint64_t bytes,
                        std::span<const topo::PathPlan> paths) {
  const std::uint64_t key = cache_key(src, dst, bytes, paths);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end() || !entry_matches(it->second, src, dst, bytes, paths)) {
    return false;
  }
  lru_.erase(it->second.recency);
  map_.erase(it);
  return true;
}

void GraphCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

std::size_t GraphCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

GraphCacheStats GraphCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mpath::pipeline
