#include "mpath/pipeline/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace mpath::pipeline {

TransferScheduler::TransferScheduler(PipelineEngine& engine,
                                     model::PathConfigurator& configurator,
                                     SchedulerOptions options)
    : engine_(&engine), configurator_(&configurator), options_(options) {
  if (options_.observe_capacity) {
    net_ = &engine_->runtime().binding().network();
    // Close the residue-integration window at the instant of every
    // capacity change, while the *old* rates still hold (the network
    // notifies pre-mutation): the elapsed window integrates at the
    // capacities that governed it, and the very next plan or query
    // water-fills against the new ones. Fixes the restore blind spot where
    // snapshot_links() only saw post-restore capacity retroactively.
    capacity_listener_ = net_->add_capacity_listener(
        [this](sim::LinkId, double, double) {
          integrate_to(engine_->runtime().engine().now());
          ++stats_.capacity_events;
        });
  }
}

TransferScheduler::~TransferScheduler() {
  if (net_ != nullptr && capacity_listener_ != 0) {
    net_->remove_capacity_listener(capacity_listener_);
  }
}

util::SmallVec<std::uint32_t, 4> TransferScheduler::plan_links(
    topo::DeviceId src, topo::DeviceId dst, const topo::PathPlan& plan) {
  const gpusim::GpuRuntime& rt = engine_->runtime();
  const auto hops = topo::path_hop_routes(rt.topology(), src, dst, plan);
  util::SmallVec<std::uint32_t, 4> out;
  // Both hops of a staged path are pipelined — concurrently loaded — so the
  // footprint is the union of all hop edges.
  for (const auto& hop : hops) {
    for (topo::EdgeId e : hop) out.push_back(rt.binding().link_for_edge(e));
  }
  return out;
}

std::vector<model::JointLink> TransferScheduler::snapshot_links() {
  const sim::FluidNetwork& net = engine_->runtime().binding().network();
  std::vector<double> own(net.link_count(), 0.0);
  for (const Ticket& t : live_) {
    for (const LivePath& p : t.paths) {
      if (p.remaining_bytes <= 0.0) continue;
      for (std::uint32_t l : p.links) own[l] += 1.0;
    }
  }
  std::vector<model::JointLink> links(net.link_count());
  for (std::uint32_t l = 0; l < net.link_count(); ++l) {
    // Severed links (capacity 0, fault injection) are floored at 1 B/s so
    // the solver stays defined; paths over them plan as effectively dead.
    links[l].capacity_bps = std::max(net.link(l).capacity_bps, 1.0);
    // Whatever streams on the link beyond this scheduler's own live paths
    // (per-chunk flows are attributed to their owning path, not double
    // counted) is background traffic that still takes max-min shares.
    links[l].background_flows =
        options_.network_snapshot
            ? std::max(0.0, net.link_flow_weight(l) - own[l])
            : 0.0;
  }
  return links;
}

std::vector<model::FixedFlow> TransferScheduler::live_flows(
    std::vector<std::pair<std::size_t, std::size_t>>* owners) const {
  std::vector<model::FixedFlow> flows;
  if (owners) owners->clear();
  for (std::size_t ti = 0; ti < live_.size(); ++ti) {
    const Ticket& t = live_[ti];
    for (std::size_t pi = 0; pi < t.paths.size(); ++pi) {
      const LivePath& p = t.paths[pi];
      if (p.remaining_bytes <= 0.0) continue;
      model::FixedFlow f;
      f.links = p.links;
      f.cap_bps = p.cap_bps;
      flows.push_back(std::move(f));
      if (owners) owners->emplace_back(ti, pi);
    }
  }
  return flows;
}

void TransferScheduler::integrate_to(double now) {
  if (now > last_event_ && !live_.empty()) {
    std::vector<std::pair<std::size_t, std::size_t>> owners;
    const auto flows = live_flows(&owners);
    if (!flows.empty()) {
      const auto links = snapshot_links();
      const auto rates = model::JointThetaSolver::maxmin_rates(flows, links);
      const double dt = now - last_event_;
      for (std::size_t j = 0; j < flows.size(); ++j) {
        LivePath& p = live_[owners[j].first].paths[owners[j].second];
        // A path spends its latency prefix first, then streams.
        const double lat = std::min(p.remaining_delta, dt);
        p.remaining_delta -= lat;
        p.remaining_bytes =
            std::max(0.0, p.remaining_bytes - rates[j] * (dt - lat));
      }
    }
    // The clock moved past these tickets' admit instant: their recorded
    // predictions are final.
    for (Ticket& t : live_) {
      if (t.t_admit < now) t.frozen = true;
    }
  }
  last_event_ = std::max(last_event_, now);
}

void TransferScheduler::refresh_predictions(
    std::span<const double> rates,
    std::span<const std::pair<std::size_t, std::size_t>> owners) {
  // Reset the estimate of every unfrozen ticket that still has live flows;
  // the stale admission prediction is superseded by this refresh.
  for (const auto& [ti, pi] : owners) {
    Ticket& t = live_[ti];
    if (!t.frozen) records_[t.record].predicted_s = 0.0;
  }
  for (std::size_t j = 0; j < owners.size(); ++j) {
    Ticket& t = live_[owners[j].first];
    if (t.frozen) continue;
    const LivePath& p = t.paths[owners[j].second];
    const double path_time =
        rates[j] > 0.0
            ? p.remaining_delta + p.remaining_bytes / rates[j]
            : p.remaining_delta + p.remaining_bytes;  // severed: degenerate
    // The transfer finishes when its slowest fixed-split path does.
    Record& rec = records_[t.record];
    rec.predicted_s =
        std::max(rec.predicted_s, (last_event_ - t.t_admit) + path_time);
  }
}

TransferScheduler::Admission TransferScheduler::admit(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) {
  Request r;
  r.src = src;
  r.dst = dst;
  r.bytes = bytes;
  r.paths = paths;
  auto batch = admit_batch(std::span<const Request>(&r, 1));
  return std::move(batch.front());
}

std::vector<TransferScheduler::Admission> TransferScheduler::admit_batch(
    std::span<const Request> requests) {
  const double now = engine_->runtime().engine().now();
  integrate_to(now);
  if (requests.empty()) return {};
  for (const Request& r : requests) {
    if (r.paths.empty()) {
      throw std::invalid_argument("TransferScheduler: no candidate paths");
    }
    if (r.bytes == 0) {
      throw std::invalid_argument("TransferScheduler: zero-byte transfer");
    }
  }

  struct PendingPlan {
    model::PreparedTransfer prepared;
    std::vector<model::JointPath> jpaths;
  };
  std::vector<PendingPlan> pending(requests.size());
  for (std::size_t k = 0; k < requests.size(); ++k) {
    const Request& r = requests[k];
    pending[k].prepared = configurator_->prepare(r.src, r.dst, r.bytes,
                                                 r.paths);
    pending[k].jpaths.resize(r.paths.size());
    for (std::size_t i = 0; i < r.paths.size(); ++i) {
      pending[k].jpaths[i].terms = pending[k].prepared.terms[i];
      pending[k].jpaths[i].links = plan_links(r.src, r.dst, r.paths[i]);
    }
  }

  std::vector<Admission> out(requests.size());
  if (options_.joint) {
    const auto links = snapshot_links();
    std::vector<std::pair<std::size_t, std::size_t>> owners;
    const auto fixed = live_flows(&owners);
    std::vector<model::JointTransfer> jts(requests.size());
    for (std::size_t k = 0; k < requests.size(); ++k) {
      jts[k].n_bytes = static_cast<double>(requests[k].bytes);
      jts[k].paths = pending[k].jpaths;
    }
    const model::JointSolution jsol =
        model::JointThetaSolver::solve(jts, fixed, links);
    stats_.joint_iterations += static_cast<std::uint64_t>(jsol.iterations);
    for (std::size_t k = 0; k < requests.size(); ++k) {
      // Contended paths carry their water-filled effective Omega into the
      // config, so predicted times — and the recovery watchdog deadlines
      // derived from them — are contention-aware instead of optimistic.
      model::PreparedTransfer eff = pending[k].prepared;
      bool overridden = false;
      for (std::size_t i = 0; i < eff.terms.size(); ++i) {
        const double rate = jsol.path_rates[k][i];
        const double cap = 1.0 / pending[k].prepared.terms[i].omega;
        if (rate > 0.0 && rate < cap) {
          eff.terms[i].omega = 1.0 / rate;
          overridden = true;
        }
      }
      out[k].config = configurator_->config_from_theta(
          eff, requests[k].bytes, requests[k].paths, jsol.transfers[k]);
      // Replay eligibility: the split depended on nothing but the tuple
      // and calibration. Checked against the pre-admission state (this
      // batch's own tickets are not registered yet).
      if (requests.size() == 1 && !overridden) {
        util::SmallVec<std::uint32_t, 8> cand;
        for (const model::JointPath& jp : pending[k].jpaths) {
          for (std::uint32_t l : jp.links) cand.push_back(l);
        }
        std::sort(cand.begin(), cand.end());
        out[k].uncontended =
            !links_contended({cand.data(), cand.size()});
      }
    }
    // In-flight (and same-instant, still unfrozen) transfers now share
    // links with the arrivals: refresh their recorded predictions.
    refresh_predictions(jsol.fixed_rates, owners);
  } else {
    for (std::size_t k = 0; k < requests.size(); ++k) {
      const model::ThetaSolution sol = model::ThetaSolver::solve(
          pending[k].prepared.terms, static_cast<double>(requests[k].bytes));
      out[k].config = configurator_->config_from_theta(
          pending[k].prepared, requests[k].bytes, requests[k].paths, sol);
      // Solo planning never looks at contention: always reproducible.
      out[k].uncontended = true;
    }
  }

  for (std::size_t k = 0; k < requests.size(); ++k) {
    Ticket t;
    t.id = next_id_++;
    t.record = records_.size();
    t.t_admit = now;
    t.src = requests[k].src;
    t.dst = requests[k].dst;
    for (std::size_t i = 0; i < requests[k].paths.size(); ++i) {
      if (out[k].config.paths[i].bytes == 0) continue;
      LivePath p;
      p.links = pending[k].jpaths[i].links;
      p.cap_bps = 1.0 / pending[k].prepared.terms[i].omega;
      p.remaining_delta = pending[k].prepared.terms[i].delta;
      p.remaining_bytes =
          static_cast<double>(out[k].config.paths[i].bytes);
      t.paths.push_back(std::move(p));
    }
    t.charged = footprint_of(t);
    out[k].ticket = t.id;
    Record rec;
    rec.t_admit = now;
    rec.predicted_s = out[k].config.predicted_time;
    rec.bytes = requests[k].bytes;
    records_.push_back(rec);
    live_.push_back(std::move(t));
    ++stats_.admitted;
  }
  return out;
}

model::TransferConfig TransferScheduler::replan(
    TicketId ticket, std::uint64_t bytes,
    std::span<const topo::PathPlan> survivors) {
  const double now = engine_->runtime().engine().now();
  integrate_to(now);
  if (survivors.empty()) {
    throw std::invalid_argument("TransferScheduler: no surviving paths");
  }
  if (bytes == 0) {
    throw std::invalid_argument("TransferScheduler: zero-byte replan");
  }
  Ticket& t = live_[find(ticket)];
  // The old footprint is gone: timed-out paths were cancelled, healthy ones
  // completed their slices. The remainder gets a fresh joint plan.
  t.paths.clear();

  const model::PreparedTransfer prepared =
      configurator_->prepare(t.src, t.dst, bytes, survivors);
  std::vector<model::JointPath> jpaths(survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    jpaths[i].terms = prepared.terms[i];
    jpaths[i].links = plan_links(t.src, t.dst, survivors[i]);
  }

  model::TransferConfig config;
  if (options_.joint) {
    const auto links = snapshot_links();
    std::vector<std::pair<std::size_t, std::size_t>> owners;
    const auto fixed = live_flows(&owners);
    model::JointTransfer jt;
    jt.n_bytes = static_cast<double>(bytes);
    jt.paths = jpaths;
    const model::JointSolution jsol = model::JointThetaSolver::solve(
        std::span<const model::JointTransfer>(&jt, 1), fixed, links);
    stats_.joint_iterations += static_cast<std::uint64_t>(jsol.iterations);
    model::PreparedTransfer eff = prepared;
    for (std::size_t i = 0; i < eff.terms.size(); ++i) {
      const double rate = jsol.path_rates[0][i];
      const double cap = 1.0 / prepared.terms[i].omega;
      if (rate > 0.0 && rate < cap) eff.terms[i].omega = 1.0 / rate;
    }
    config = configurator_->config_from_theta(eff, bytes, survivors,
                                              jsol.transfers[0]);
    refresh_predictions(jsol.fixed_rates, owners);
  } else {
    const model::ThetaSolution sol = model::ThetaSolver::solve(
        prepared.terms, static_cast<double>(bytes));
    config = configurator_->config_from_theta(prepared, bytes, survivors, sol);
  }

  for (std::size_t i = 0; i < survivors.size(); ++i) {
    if (config.paths[i].bytes == 0) continue;
    LivePath p;
    p.links = jpaths[i].links;
    p.cap_bps = 1.0 / prepared.terms[i].omega;
    p.remaining_delta = prepared.terms[i].delta;
    p.remaining_bytes = static_cast<double>(config.paths[i].bytes);
    t.paths.push_back(std::move(p));
  }
  // Re-plans replace the footprint: the charge the departure check expects
  // is the latest one.
  t.charged = footprint_of(t);
  ++records_[t.record].replans;
  ++stats_.replans;
  return config;
}

void TransferScheduler::depart(TicketId ticket) {
  const double now = engine_->runtime().engine().now();
  integrate_to(now);
  const std::size_t idx = find(ticket);
  verify_footprint(idx);
  records_[live_[idx].record].t_depart = now;
  ++stats_.departed;
  release(idx);
}

void TransferScheduler::fail(TicketId ticket) {
  const double now = engine_->runtime().engine().now();
  integrate_to(now);
  const std::size_t idx = find(ticket);
  verify_footprint(idx);
  Record& rec = records_[live_[idx].record];
  rec.t_depart = now;
  rec.failed = true;
  ++stats_.failed;
  release(idx);
}

util::SmallVec<std::uint32_t, 8> TransferScheduler::footprint_of(
    const Ticket& t) {
  util::SmallVec<std::uint32_t, 8> out;
  for (const LivePath& p : t.paths) {
    for (std::uint32_t l : p.links) out.push_back(l);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TransferScheduler::verify_footprint(std::size_t index) {
  // The attributed link weight being released must be exactly what the
  // latest admission/replan charged — a replayed transfer in particular
  // must not depart with a footprint its template never registered.
  ++stats_.footprint_checks;
  const Ticket& t = live_[index];
  const util::SmallVec<std::uint32_t, 8> current = footprint_of(t);
  bool equal = current.size() == t.charged.size();
  for (std::size_t i = 0; equal && i < current.size(); ++i) {
    equal = current[i] == t.charged[i];
  }
  if (!equal) {
    ++stats_.footprint_mismatches;
    assert(false && "TransferScheduler: departure footprint mismatch");
  }
}

bool TransferScheduler::links_contended(std::span<const std::uint32_t> cand) {
  for (const Ticket& t : live_) {
    for (const LivePath& p : t.paths) {
      if (p.remaining_bytes <= 0.0) continue;
      for (std::uint32_t l : p.links) {
        if (std::binary_search(cand.begin(), cand.end(), l)) return true;
      }
    }
  }
  if (options_.network_snapshot) {
    const auto links = snapshot_links();
    for (std::uint32_t l : cand) {
      if (links[l].background_flows > 0.0) return true;
    }
  }
  return false;
}

TransferScheduler::Admission TransferScheduler::admit_replay(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths,
    const model::TransferConfig& compiled) {
  const double now = engine_->runtime().engine().now();
  integrate_to(now);
  if (paths.empty()) {
    throw std::invalid_argument("TransferScheduler: no candidate paths");
  }
  if (bytes == 0) {
    throw std::invalid_argument("TransferScheduler: zero-byte transfer");
  }

  // Template integrity: the compiled config must describe exactly this
  // request, or replaying it would execute a stale split.
  bool matches = compiled.total_bytes == bytes &&
                 compiled.paths.size() == paths.size();
  for (std::size_t i = 0; matches && i < paths.size(); ++i) {
    matches = compiled.paths[i].plan == paths[i];
  }
  if (!matches) {
    ++stats_.replay_plan_mismatches;
    return {};
  }

  // Resolve the candidate footprint once; it doubles as the contention
  // probe and (filtered to carrying paths) the ticket registration.
  util::SmallVec<util::SmallVec<std::uint32_t, 4>, 4> path_links;
  util::SmallVec<std::uint32_t, 8> cand;
  for (const topo::PathPlan& plan : paths) {
    path_links.push_back(plan_links(src, dst, plan));
    for (std::uint32_t l : path_links.back()) cand.push_back(l);
  }
  std::sort(cand.begin(), cand.end());

  if (options_.joint && links_contended({cand.data(), cand.size()})) {
    // Contention changed since compile: a fresh joint solve could pick a
    // different split, so the template is not admissible as-is.
    ++stats_.replay_rejects;
    return {};
  }

  Admission out;
  out.config = compiled;
  out.uncontended = true;
  Ticket t;
  t.id = next_id_++;
  t.record = records_.size();
  t.t_admit = now;
  t.src = src;
  t.dst = dst;
  for (std::size_t i = 0; i < compiled.paths.size(); ++i) {
    const model::PathShare& share = compiled.paths[i];
    if (share.bytes == 0) continue;
    LivePath p;
    p.links = path_links[i];
    // Uncontended templates carry solo terms (no omega override), so this
    // registers the identical cap/residue a fresh admission would.
    p.cap_bps = 1.0 / share.terms.omega;
    p.remaining_delta = share.terms.delta;
    p.remaining_bytes = static_cast<double>(share.bytes);
    t.paths.push_back(std::move(p));
  }
  t.charged = footprint_of(t);
  out.ticket = t.id;
  Record rec;
  rec.t_admit = now;
  rec.predicted_s = compiled.predicted_time;
  rec.bytes = bytes;
  records_.push_back(rec);
  live_.push_back(std::move(t));
  ++stats_.admitted;
  ++stats_.replay_admits;
  return out;
}

std::vector<TransferScheduler::TicketId> TransferScheduler::admit_chain(
    std::span<const ChainStepRequest> steps) {
  if (steps.empty()) return {};
  const double now = engine_->runtime().engine().now();
  integrate_to(now);

  // Step integrity first: every compiled config must still describe its
  // request, or replaying the round would execute stale splits.
  for (const ChainStepRequest& s : steps) {
    if (s.paths.empty() || s.bytes == 0 || s.compiled == nullptr) {
      throw std::invalid_argument("TransferScheduler: malformed chain step");
    }
    bool matches = s.compiled->total_bytes == s.bytes &&
                   s.compiled->paths.size() == s.paths.size();
    for (std::size_t i = 0; matches && i < s.paths.size(); ++i) {
      matches = s.compiled->paths[i].plan == s.paths[i];
    }
    if (!matches) {
      ++stats_.chain_plan_mismatches;
      ++stats_.chain_round_rejects;
      return {};
    }
  }

  // Resolve the carrying-path links once; they are the round's water-fill
  // flows and, on acceptance, the per-step ticket registrations.
  std::vector<util::SmallVec<util::SmallVec<std::uint32_t, 4>, 4>> step_links(
      steps.size());
  std::vector<model::FixedFlow> flows;
  util::SmallVec<std::uint32_t, 8> round_links;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const ChainStepRequest& s = steps[k];
    for (std::size_t i = 0; i < s.compiled->paths.size(); ++i) {
      const model::PathShare& share = s.compiled->paths[i];
      if (share.bytes == 0) {
        step_links[k].push_back({});
        continue;
      }
      step_links[k].push_back(plan_links(s.src, s.dst, s.paths[i]));
      model::FixedFlow f;
      f.links = step_links[k].back();
      // Compiled templates carry solo terms (uncontended at compile time),
      // so the cap is the solo path bandwidth — same as admit_replay.
      f.cap_bps = 1.0 / share.terms.omega;
      flows.push_back(std::move(f));
      for (std::uint32_t l : step_links[k].back()) round_links.push_back(l);
    }
  }

  if (options_.joint) {
    const auto links = snapshot_links();
    if (options_.network_snapshot) {
      for (std::uint32_t l : round_links) {
        if (links[l].background_flows > 0.0) {
          // Unscheduled traffic shares a round link: its max-min share is
          // not ours to bound, so the compiled splits are not guaranteed.
          ++stats_.chain_round_rejects;
          return {};
        }
      }
    }
    // ONE water-fill answers the whole round: the round's carrying paths
    // join every live flow, and acceptance requires *all* of them at their
    // solo caps. Then nothing is squeezed anywhere — inductively every live
    // scheduled flow keeps running at cap — and a fresh joint solve of any
    // step at any instant inside the round would apply no omega override,
    // i.e. would reproduce exactly the compiled split being replayed.
    for (model::FixedFlow& f : live_flows(nullptr)) {
      flows.push_back(std::move(f));
    }
    const model::JointThetaSolver::RoundValidation v =
        model::JointThetaSolver::validate_round(flows, links);
    if (!v.at_cap) {
      ++stats_.chain_round_rejects;
      return {};
    }
  }

  std::vector<TicketId> out;
  out.reserve(steps.size());
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const ChainStepRequest& s = steps[k];
    Ticket t;
    t.id = next_id_++;
    t.record = records_.size();
    t.t_admit = now;
    t.src = s.src;
    t.dst = s.dst;
    for (std::size_t i = 0; i < s.compiled->paths.size(); ++i) {
      const model::PathShare& share = s.compiled->paths[i];
      if (share.bytes == 0) continue;
      LivePath p;
      p.links = step_links[k][i];
      p.cap_bps = 1.0 / share.terms.omega;
      p.remaining_delta = share.terms.delta;
      p.remaining_bytes = static_cast<double>(share.bytes);
      t.paths.push_back(std::move(p));
    }
    t.charged = footprint_of(t);
    out.push_back(t.id);
    Record rec;
    rec.t_admit = now;
    rec.predicted_s = s.compiled->predicted_time;
    rec.bytes = s.bytes;
    records_.push_back(rec);
    live_.push_back(std::move(t));
    ++stats_.admitted;
    ++stats_.chain_step_admits;
  }
  ++stats_.chain_round_admits;
  return out;
}

void TransferScheduler::depart_chain(std::span<const TicketId> tickets) {
  const double now = engine_->runtime().engine().now();
  integrate_to(now);
  for (const TicketId id : tickets) {
    if (id == kInvalidTicket) continue;
    std::size_t idx = live_.size();
    for (std::size_t i = 0; i < live_.size(); ++i) {
      if (live_[i].id == id) {
        idx = i;
        break;
      }
    }
    if (idx == live_.size()) continue;  // already claimed and departed
    verify_footprint(idx);
    Record& rec = records_[live_[idx].record];
    rec.t_depart = now;
    rec.failed = true;  // never carried a transfer; keep history honest
    ++stats_.chain_unwound;
    release(idx);
  }
}

std::size_t TransferScheduler::find(TicketId ticket) {
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (live_[i].id == ticket) return i;
  }
  throw std::invalid_argument("TransferScheduler: unknown ticket");
}

void TransferScheduler::release(std::size_t index) {
  live_[index] = std::move(live_.back());
  live_.pop_back();
}

}  // namespace mpath::pipeline
