#include "mpath/pipeline/engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace mpath::pipeline {

PipelineEngine::PipelineEngine(gpusim::GpuRuntime& runtime,
                               std::size_t staging_buffers_per_device,
                               gpusim::Payload staging_payload)
    : runtime_(&runtime),
      staging_(runtime, staging_buffers_per_device, staging_payload) {}

gpusim::StreamId PipelineEngine::stream_for(const StreamKey& key,
                                            topo::DeviceId device) {
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_.emplace(key, runtime_->create_stream(device)).first;
  }
  return it->second;
}

sim::Engine::DelayAwaiter PipelineEngine::issue_cost() {
  const auto& costs = runtime_->costs();
  return runtime_->engine().delay(costs.op_launch_s *
                                  runtime_->rng().jitter(costs.jitter_rel));
}

std::uint64_t PipelineEngine::bytes_on(topo::PathKind kind) const {
  auto it = bytes_by_kind_.find(kind);
  return it == bytes_by_kind_.end() ? 0 : it->second;
}

sim::Task<void> PipelineEngine::execute(gpusim::DeviceBuffer& dst,
                                        std::size_t dst_offset,
                                        const gpusim::DeviceBuffer& src,
                                        std::size_t src_offset,
                                        ExecPlan plan) {
  std::uint64_t total = 0;
  for (const ExecPath& p : plan) {
    if (p.chunks < 1) {
      throw std::invalid_argument("PipelineEngine: chunks must be >= 1");
    }
    if (p.plan.kind != topo::PathKind::Direct &&
        p.plan.stage == topo::kInvalidDevice) {
      throw std::invalid_argument("PipelineEngine: staged path without stage");
    }
    total += p.bytes;
  }
  // Bounds check up front; memcpy enqueues would catch it later, but a
  // malformed plan should fail before any operation is issued.
  src.check_region(src_offset, total);
  dst.check_region(dst_offset, total);

  const topo::DeviceId src_dev = src.device();
  const topo::DeviceId dst_dev = dst.device();
  const auto& costs = runtime_->costs();

  // -- prepare per-path issue state -----------------------------------------
  std::vector<PathIssue> paths;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ExecPath& spec = plan[i];
    if (spec.bytes == 0) continue;
    PathIssue pi;
    pi.spec = spec;
    pi.offset = offset;
    offset += spec.bytes;
    // Never more chunks than bytes.
    const int k = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(spec.chunks), spec.bytes));
    pi.spec.chunks = k;
    const std::uint64_t base = spec.bytes / static_cast<std::uint64_t>(k);
    const std::uint64_t rem = spec.bytes % static_cast<std::uint64_t>(k);
    std::size_t chunk_off = 0;
    for (int c = 0; c < k; ++c) {
      const std::size_t sz =
          base + (static_cast<std::uint64_t>(c) < rem ? 1 : 0);
      pi.chunk_offsets.push_back(chunk_off);
      pi.chunk_sizes.push_back(sz);
      chunk_off += sz;
    }
    pi.staged = spec.plan.kind != topo::PathKind::Direct;
    if (pi.staged) {
      pi.first_stream = stream_for({src_dev, dst_dev, i, 0}, src_dev);
      pi.second_stream =
          stream_for({src_dev, dst_dev, i, 1}, spec.plan.stage);
      pi.extra_sync_s = spec.plan.kind == topo::PathKind::HostStaged
                            ? costs.host_stage_sync_s
                            : costs.stage_sync_s;
      const std::size_t max_chunk =
          *std::max_element(pi.chunk_sizes.begin(), pi.chunk_sizes.end());
      // Double-buffered staging: two slots of the largest chunk.
      pi.lease =
          co_await staging_.acquire(spec.plan.stage, 2 * max_chunk, src_dev);
      for (int c = 0; c < k; ++c) {
        pi.fwd_events.push_back(runtime_->create_event());
        pi.bwd_events.push_back(runtime_->create_event());
      }
    } else {
      pi.first_stream = stream_for({src_dev, dst_dev, i, 0}, src_dev);
    }
    bytes_by_kind_[spec.plan.kind] += spec.bytes;
    paths.push_back(std::move(pi));
  }

  // -- interleaved issue loop -------------------------------------------------
  // One host loop issues chunk r of every path before chunk r+1 of any, so
  // all paths begin flowing early while later paths still start strictly
  // after earlier ones (sequential initiation).
  int max_rounds = 0;
  for (const PathIssue& pi : paths) {
    max_rounds = std::max(max_rounds, pi.spec.chunks);
  }
  for (int r = 0; r < max_rounds; ++r) {
    for (PathIssue& pi : paths) {
      if (r >= pi.spec.chunks) continue;
      const std::size_t c = static_cast<std::size_t>(r);
      const std::size_t sz = pi.chunk_sizes[c];
      const std::size_t src_at = src_offset + pi.offset + pi.chunk_offsets[c];
      const std::size_t dst_at = dst_offset + pi.offset + pi.chunk_offsets[c];
      if (!pi.staged) {
        runtime_->memcpy_async(dst, dst_at, src, src_at, sz,
                               pi.first_stream);
        co_await issue_cost();
        continue;
      }
      gpusim::DeviceBuffer& stage = pi.lease.buffer();
      const std::size_t slot_off = (c % 2) * (stage.size() / 2);
      if (r >= 2) {
        // The slot is free once chunk c-2 left the staging device.
        runtime_->wait_event(pi.first_stream, pi.bwd_events[c - 2]);
        co_await issue_cost();
      }
      runtime_->memcpy_async(stage, slot_off, src, src_at, sz,
                             pi.first_stream);
      co_await issue_cost();
      runtime_->record_event(pi.fwd_events[c], pi.first_stream);
      co_await issue_cost();
      runtime_->wait_event(pi.second_stream, pi.fwd_events[c]);
      co_await issue_cost();
      if (pi.extra_sync_s > 0.0) {
        runtime_->stream_delay(pi.second_stream, pi.extra_sync_s);
        co_await issue_cost();
      }
      runtime_->memcpy_async(dst, dst_at, stage, slot_off, sz,
                             pi.second_stream);
      co_await issue_cost();
      runtime_->record_event(pi.bwd_events[c], pi.second_stream);
      co_await issue_cost();
    }
  }

  // -- completion ---------------------------------------------------------------
  // Staged paths first: their staging lease returns to the pool the moment
  // their own streams drain, so windowed transfers never hold buffers
  // hostage while waiting for an unrelated (direct) slice to finish.
  for (PathIssue& pi : paths) {
    if (!pi.staged) continue;
    co_await runtime_->synchronize(pi.second_stream);
    if (src.materialized() && dst.materialized() &&
        !pi.lease.buffer().materialized()) {
      std::memcpy(dst.region(dst_offset + pi.offset, pi.spec.bytes).data(),
                  src.region(src_offset + pi.offset, pi.spec.bytes).data(),
                  pi.spec.bytes);
    }
    pi.lease.release();
  }
  for (PathIssue& pi : paths) {
    if (pi.staged) continue;
    co_await runtime_->synchronize(pi.first_stream);
  }
  ++transfers_;
  // Leases release on scope exit, returning staging buffers to the pool.
}

}  // namespace mpath::pipeline
