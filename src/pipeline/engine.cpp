#include "mpath/pipeline/engine.hpp"

#include <algorithm>

#include "mpath/pipeline/graph.hpp"
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>

namespace mpath::pipeline {

namespace {

// State shared between the executing coroutine and its watchdog callbacks.
// Heap-held (shared_ptr, pool-recycled) because a watchdog timer can fire
// after the transfer completed and the coroutine frame is gone.
struct MonitorState {
  struct Entry {
    gpusim::CancelTokenPtr token;
    util::SmallVec<gpusim::EventId, 16> done_events;  ///< per-chunk completion
    util::SmallVec<std::size_t, 16> chunk_sizes;
    std::size_t records_issued = 0;  ///< completion records enqueued so far
    std::uint64_t bytes = 0;
    std::uint64_t delivered = 0;  ///< direct: running total fed by DoneHooks
    bool staged = false;
    bool finished = false;
    bool timed_out = false;
  };
  gpusim::GpuRuntime* rt = nullptr;
  util::SmallVec<Entry, 4> entries;  ///< parallel to the caller's plan

  // Contiguous delivered prefix. Direct paths accumulate it passively: each
  // chunk's memcpy_async carries a DoneHook that adds the chunk size on
  // delivery (streams are in-order, so the sum is always a prefix), costing
  // no extra events. Staged paths poll the backward event records; only
  // events whose record has been *enqueued* are consulted — a freshly
  // created event reads as fired (CUDA never-recorded semantics) and must
  // not count until record_event re-arms it.
  [[nodiscard]] std::uint64_t delivered_prefix(std::size_t i) const {
    const Entry& e = entries[i];
    if (!e.staged) return e.delivered;
    std::uint64_t sum = 0;
    const std::size_t n = std::min(e.records_issued, e.done_events.size());
    for (std::size_t c = 0; c < n; ++c) {
      if (!rt->event_fired(e.done_events[c])) break;
      sum += e.chunk_sizes[c];
    }
    return sum;
  }

  // Watchdog body for path `i`: snapshot progress *before* cancelling (the
  // post-cancel drain fires the remaining completion records without moving
  // data), then abort the path's in-flight flows.
  void on_deadline(std::size_t i) {
    Entry& e = entries[i];
    if (e.finished || e.timed_out) return;
    const std::uint64_t d = delivered_prefix(i);
    if (d >= e.bytes) {  // raced with completion: path is effectively done
      e.finished = true;
      e.delivered = e.bytes;
      return;
    }
    e.delivered = d;
    e.timed_out = true;
    e.token->cancel();
  }
};

}  // namespace

PipelineEngine::PipelineEngine(gpusim::GpuRuntime& runtime,
                               std::size_t staging_buffers_per_device,
                               gpusim::Payload staging_payload)
    : runtime_(&runtime),
      staging_(runtime, staging_buffers_per_device, staging_payload) {}

gpusim::StreamId PipelineEngine::stream_for(const StreamKey& key,
                                            topo::DeviceId device) {
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    it = streams_.emplace(key, runtime_->create_stream(device)).first;
  }
  return it->second;
}

sim::Engine::DelayAwaiter PipelineEngine::issue_cost() {
  const auto& costs = runtime_->costs();
  return runtime_->engine().delay(costs.op_launch_s *
                                  runtime_->rng().jitter(costs.jitter_rel));
}

std::uint64_t PipelineEngine::bytes_on(topo::PathKind kind) const {
  auto it = bytes_by_kind_.find(kind);
  return it == bytes_by_kind_.end() ? 0 : it->second;
}

sim::Task<void> PipelineEngine::execute(gpusim::DeviceBuffer& dst,
                                        std::size_t dst_offset,
                                        const gpusim::DeviceBuffer& src,
                                        std::size_t src_offset,
                                        ExecPlan plan) {
  (void)co_await execute_monitored(dst, dst_offset, src, src_offset,
                                   std::move(plan), {});
}

sim::Task<TransferOutcome> PipelineEngine::execute_monitored(
    gpusim::DeviceBuffer& dst, std::size_t dst_offset,
    const gpusim::DeviceBuffer& src, std::size_t src_offset, ExecPlan plan,
    PathWatchList watch) {
  if (!watch.empty() && watch.size() != plan.size()) {
    throw std::invalid_argument(
        "PipelineEngine: watch must be empty or match the plan size");
  }
  // Validate the *whole* plan before issuing anything: a malformed plan
  // must not leak staging-slot reservations or partially issued operations.
  // The sum is overflow-checked so a wrapped total cannot slip past the
  // region bounds check and then throw mid-issuance.
  std::uint64_t total = 0;
  for (const ExecPath& p : plan) {
    if (p.chunks < 1) {
      throw std::invalid_argument("PipelineEngine: chunks must be >= 1");
    }
    if (p.plan.kind != topo::PathKind::Direct &&
        p.plan.stage == topo::kInvalidDevice) {
      throw std::invalid_argument("PipelineEngine: staged path without stage");
    }
    if (p.bytes > std::numeric_limits<std::uint64_t>::max() - total) {
      throw std::invalid_argument("PipelineEngine: plan byte total overflows");
    }
    total += p.bytes;
  }
  src.check_region(src_offset, total);
  dst.check_region(dst_offset, total);

  const topo::DeviceId src_dev = src.device();
  const topo::DeviceId dst_dev = dst.device();
  const auto& costs = runtime_->costs();

  bool any_watch = false;
  for (const PathWatch& w : watch) any_watch |= w.deadline_s > 0.0;
  std::shared_ptr<MonitorState> mon;
  if (any_watch) {
    mon = sim::make_pooled<MonitorState>();
    mon->rt = runtime_;
    mon->entries.resize(plan.size());
  }

  // -- prepare per-path issue state -----------------------------------------
  util::SmallVec<PathIssue, 4> paths;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ExecPath& spec = plan[i];
    if (spec.bytes == 0) continue;
    PathIssue pi;
    pi.spec = spec;
    pi.offset = offset;
    pi.plan_index = i;
    pi.monitored = mon != nullptr && watch[i].deadline_s > 0.0;
    offset += spec.bytes;
    // Never more chunks than bytes.
    const int k = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(spec.chunks), spec.bytes));
    pi.spec.chunks = k;
    const std::uint64_t base = spec.bytes / static_cast<std::uint64_t>(k);
    const std::uint64_t rem = spec.bytes % static_cast<std::uint64_t>(k);
    std::size_t chunk_off = 0;
    for (int c = 0; c < k; ++c) {
      const std::size_t sz =
          base + (static_cast<std::uint64_t>(c) < rem ? 1 : 0);
      pi.chunk_offsets.push_back(chunk_off);
      pi.chunk_sizes.push_back(sz);
      chunk_off += sz;
    }
    pi.staged = spec.plan.kind != topo::PathKind::Direct;
    if (pi.staged) {
      pi.first_stream = stream_for({src_dev, dst_dev, i, 0}, src_dev);
      pi.second_stream =
          stream_for({src_dev, dst_dev, i, 1}, spec.plan.stage);
      pi.extra_sync_s = spec.plan.kind == topo::PathKind::HostStaged
                            ? costs.host_stage_sync_s
                            : costs.stage_sync_s;
      const std::size_t max_chunk =
          *std::max_element(pi.chunk_sizes.begin(), pi.chunk_sizes.end());
      // Double-buffered staging: two slots of the largest chunk.
      pi.lease =
          co_await staging_.acquire(spec.plan.stage, 2 * max_chunk, src_dev);
      for (int c = 0; c < k; ++c) {
        pi.fwd_events.push_back(runtime_->acquire_event());
        pi.bwd_events.push_back(runtime_->acquire_event());
      }
    } else {
      pi.first_stream = stream_for({src_dev, dst_dev, i, 0}, src_dev);
    }
    if (pi.monitored) {
      MonitorState::Entry& e = mon->entries[i];
      e.token = runtime_->make_cancel_token();
      e.bytes = spec.bytes;
      e.chunk_sizes = pi.chunk_sizes;
      e.staged = pi.staged;
      if (pi.staged) {
        // The backward record of chunk c fires once the chunk left the
        // staging device, i.e. the chunk is visible at the destination.
        e.done_events = pi.bwd_events;
      }
      // Direct paths need no events at all: each chunk's copy reports its
      // own completion through a DoneHook (see the issue loop below).
    }
    bytes_by_kind_[spec.plan.kind] += spec.bytes;
    paths.push_back(std::move(pi));
  }

  // -- arm watchdogs ----------------------------------------------------------
  // Deadlines are relative to issue start (staging acquisition included in
  // the prepare loop above is charged to the transfer, not the deadline).
  // The callback holds the shared MonitorState, not the coroutine frame, so
  // a timer firing after the transfer completed is a harmless no-op.
  if (mon != nullptr) {
    sim::Engine& engine = runtime_->engine();
    for (const PathIssue& pi : paths) {
      if (!pi.monitored) continue;
      const std::size_t i = pi.plan_index;
      engine.schedule_callback(engine.now() + watch[i].deadline_s,
                               [mon, i] { mon->on_deadline(i); });
    }
  }

  // -- interleaved issue loop -------------------------------------------------
  // One host loop issues chunk r of every path before chunk r+1 of any, so
  // all paths begin flowing early while later paths still start strictly
  // after earlier ones (sequential initiation).
  int max_rounds = 0;
  for (const PathIssue& pi : paths) {
    max_rounds = std::max(max_rounds, pi.spec.chunks);
  }
  for (int r = 0; r < max_rounds; ++r) {
    for (PathIssue& pi : paths) {
      if (r >= pi.spec.chunks) continue;
      // Stop feeding a path whose watchdog already gave up on it.
      if (pi.monitored && mon->entries[pi.plan_index].timed_out) continue;
      gpusim::CancelTokenPtr token =
          pi.monitored ? mon->entries[pi.plan_index].token : nullptr;
      const std::size_t c = static_cast<std::size_t>(r);
      const std::size_t sz = pi.chunk_sizes[c];
      const std::size_t src_at = src_offset + pi.offset + pi.chunk_offsets[c];
      const std::size_t dst_at = dst_offset + pi.offset + pi.chunk_offsets[c];
      if (!pi.staged) {
        // Progress accounting rides the copy's own completion instead of an
        // extra per-chunk event record: monitoring a direct path is free.
        gpusim::GpuRuntime::DoneHook hook;
        if (pi.monitored) {
          hook = [mon, i = pi.plan_index, sz](bool delivered) {
            if (delivered) mon->entries[i].delivered += sz;
          };
        }
        runtime_->memcpy_async(dst, dst_at, src, src_at, sz, pi.first_stream,
                               token, std::move(hook));
        co_await issue_cost();
        continue;
      }
      gpusim::DeviceBuffer& stage = pi.lease.buffer();
      const std::size_t slot_off = (c % 2) * (stage.size() / 2);
      if (r >= 2) {
        // The slot is free once chunk c-2 left the staging device.
        runtime_->wait_event(pi.first_stream, pi.bwd_events[c - 2]);
        co_await issue_cost();
      }
      runtime_->memcpy_async(stage, slot_off, src, src_at, sz,
                             pi.first_stream, token);
      co_await issue_cost();
      runtime_->record_event(pi.fwd_events[c], pi.first_stream);
      co_await issue_cost();
      runtime_->wait_event(pi.second_stream, pi.fwd_events[c]);
      co_await issue_cost();
      if (pi.extra_sync_s > 0.0) {
        runtime_->stream_delay(pi.second_stream, pi.extra_sync_s);
        co_await issue_cost();
      }
      runtime_->memcpy_async(dst, dst_at, stage, slot_off, sz,
                             pi.second_stream, token);
      co_await issue_cost();
      runtime_->record_event(pi.bwd_events[c], pi.second_stream);
      if (pi.monitored) ++mon->entries[pi.plan_index].records_issued;
      co_await issue_cost();
    }
  }

  // -- completion ---------------------------------------------------------------
  // Staged paths first: their staging lease returns to the pool the moment
  // their own streams drain, so windowed transfers never hold buffers
  // hostage while waiting for an unrelated (direct) slice to finish. A
  // timed-out path's streams drain too: its cancelled copies skip the data
  // movement, so the synchronize below returns promptly instead of hanging.
  for (PathIssue& pi : paths) {
    if (!pi.staged) continue;
    co_await runtime_->synchronize(pi.second_stream);
    const bool timed_out =
        pi.monitored && mon->entries[pi.plan_index].timed_out;
    if (src.materialized() && dst.materialized() &&
        !pi.lease.buffer().materialized()) {
      // Simulated staging buffer between materialized endpoints: land the
      // payload in bulk — but only the delivered prefix of a path that was
      // aborted mid-flight.
      const std::size_t land =
          timed_out
              ? static_cast<std::size_t>(mon->entries[pi.plan_index].delivered)
              : static_cast<std::size_t>(pi.spec.bytes);
      if (land > 0) {
        std::memcpy(dst.region(dst_offset + pi.offset, land).data(),
                    src.region(src_offset + pi.offset, land).data(), land);
      }
    }
    pi.lease.release();
  }
  for (PathIssue& pi : paths) {
    if (pi.staged) continue;
    co_await runtime_->synchronize(pi.first_stream);
  }
  ++transfers_;

  // Recycle this transfer's events. All records have fired (streams are
  // drained above), every waiter captured its latch at enqueue time, and
  // late watchdog timers bail out on finished/timed-out entries before
  // consulting events — so a reused id can never alias stale state.
  for (PathIssue& pi : paths) {
    for (gpusim::EventId ev : pi.fwd_events) runtime_->release_event(ev);
    for (gpusim::EventId ev : pi.bwd_events) runtime_->release_event(ev);
  }

  // -- assemble the outcome ---------------------------------------------------
  TransferOutcome out;
  out.paths.resize(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    out.paths[i].bytes = plan[i].bytes;
    out.paths[i].bytes_delivered = plan[i].bytes;  // default: fully delivered
  }
  if (mon != nullptr) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      MonitorState::Entry& e = mon->entries[i];
      if (e.timed_out) {
        out.paths[i].timed_out = true;
        out.paths[i].bytes_delivered = e.delivered;
        out.complete = false;
      } else {
        e.finished = true;  // disarm any still-pending watchdog timer
      }
    }
  }
  co_return out;
  // Leases release on scope exit, returning staging buffers to the pool.
}

std::shared_ptr<TransferGraph> PipelineEngine::compile_graph(
    topo::DeviceId src_dev, topo::DeviceId dst_dev,
    const model::TransferConfig& config) {
  // Validate the whole config first, mirroring execute_monitored: a
  // malformed config must not leak reserved events or staging slots.
  std::uint64_t total = 0;
  for (const model::PathShare& share : config.paths) {
    if (share.bytes > 0 && share.chunks < 1) {
      throw std::invalid_argument("PipelineEngine: chunks must be >= 1");
    }
    if (share.bytes > 0 && share.plan.kind != topo::PathKind::Direct &&
        share.plan.stage == topo::kInvalidDevice) {
      throw std::invalid_argument("PipelineEngine: staged path without stage");
    }
    if (share.bytes > std::numeric_limits<std::uint64_t>::max() - total) {
      throw std::invalid_argument("PipelineEngine: plan byte total overflows");
    }
    total += share.bytes;
  }
  if (config.paths.empty() || total == 0) {
    throw std::invalid_argument("PipelineEngine: cannot compile empty config");
  }

  const auto& costs = runtime_->costs();
  auto graph = std::make_shared<TransferGraph>();
  graph->runtime_ = runtime_;
  graph->src_dev_ = src_dev;
  graph->dst_dev_ = dst_dev;
  graph->total_bytes_ = total;
  graph->config_ = config;
  graph->key_paths_.reserve(config.paths.size());
  for (const model::PathShare& share : config.paths) {
    graph->key_paths_.push_back(share.plan);
  }

  std::size_t offset = 0;
  for (std::size_t i = 0; i < config.paths.size(); ++i) {
    const model::PathShare& share = config.paths[i];
    if (share.bytes == 0) continue;
    TransferGraph::Path p;
    p.plan = share.plan;
    p.bytes = share.bytes;
    p.offset = offset;
    p.plan_index = i;
    offset += share.bytes;
    const int k = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(share.chunks), share.bytes));
    p.chunks = k;
    p.staged = share.plan.kind != topo::PathKind::Direct;
    if (p.staged) {
      p.first_stream = stream_for({src_dev, dst_dev, i, 0}, src_dev);
      p.second_stream = stream_for({src_dev, dst_dev, i, 1}, share.plan.stage);
      p.extra_sync_s = share.plan.kind == topo::PathKind::HostStaged
                           ? costs.host_stage_sync_s
                           : costs.stage_sync_s;
      // Largest chunk under the base/remainder split; double-buffered slot.
      const std::uint64_t base = share.bytes / static_cast<std::uint64_t>(k);
      const std::uint64_t max_chunk =
          base + (share.bytes % static_cast<std::uint64_t>(k) != 0 ? 1 : 0);
      p.lease = staging_.try_acquire(
          share.plan.stage, 2 * static_cast<std::size_t>(max_chunk), src_dev);
      if (!p.lease.valid()) {
        // Pool exhausted: refuse to compile rather than block. The partial
        // graph's destructor returns any already-reserved resources.
        return nullptr;
      }
      p.slot_bytes = p.lease.buffer().size() / 2;
      for (int c = 0; c < k; ++c) {
        p.fwd_events.push_back(runtime_->acquire_event());
        p.bwd_events.push_back(runtime_->acquire_event());
      }
    } else {
      p.first_stream = stream_for({src_dev, dst_dev, i, 0}, src_dev);
    }
    graph->paths_.push_back(std::move(p));
  }
  graph->rebuild_ops();
  return graph;
}

sim::Task<TransferOutcome> PipelineEngine::replay(
    std::shared_ptr<TransferGraph> graph, gpusim::DeviceBuffer& dst,
    std::size_t dst_offset, const gpusim::DeviceBuffer& src,
    std::size_t src_offset, PathWatchList watch) {
  if (graph == nullptr || !graph->valid()) {
    throw std::invalid_argument("PipelineEngine: replay of an invalid graph");
  }
  TransferGraph& g = *graph;
  if (g.runtime_ != runtime_) {
    throw std::invalid_argument(
        "PipelineEngine: graph was compiled by a different runtime");
  }
  if (g.busy_) {
    throw std::logic_error(
        "PipelineEngine: graph replay already in flight (not reentrant)");
  }
  if (!watch.empty() && watch.size() != g.config_.paths.size()) {
    throw std::invalid_argument(
        "PipelineEngine: watch must be empty or match the compiled paths");
  }
  if (src.device() != g.src_dev_ || dst.device() != g.dst_dev_) {
    throw std::invalid_argument(
        "PipelineEngine: replay endpoints do not match the compiled graph");
  }
  src.check_region(src_offset, g.total_bytes_);
  dst.check_region(dst_offset, g.total_bytes_);

  g.busy_ = true;
  ++g.replays_;
  struct BusyReset {
    TransferGraph* g;
    ~BusyReset() { g->busy_ = false; }
  } busy_reset{&g};

  const std::size_t plan_size = g.config_.paths.size();
  bool any_watch = false;
  for (const PathWatch& w : watch) any_watch |= w.deadline_s > 0.0;
  std::shared_ptr<MonitorState> mon;
  if (any_watch) {
    mon = sim::make_pooled<MonitorState>();
    mon->rt = runtime_;
    mon->entries.resize(plan_size);
  }

  // -- prepare monitor entries + accounting (no issue state to build) -------
  util::SmallVec<std::uint8_t, 4> monitored;
  monitored.resize(g.paths_.size());
  for (std::size_t pidx = 0; pidx < g.paths_.size(); ++pidx) {
    const TransferGraph::Path& pi = g.paths_[pidx];
    const bool m =
        mon != nullptr && watch[pi.plan_index].deadline_s > 0.0;
    monitored[pidx] = m ? 1 : 0;
    if (m) {
      MonitorState::Entry& e = mon->entries[pi.plan_index];
      e.token = runtime_->make_cancel_token();
      e.bytes = pi.bytes;
      e.chunk_sizes = pi.chunk_sizes;
      e.staged = pi.staged;
      if (pi.staged) e.done_events = pi.bwd_events;
    }
    bytes_by_kind_[pi.plan.kind] += pi.bytes;
  }

  // -- arm watchdogs (same relative-deadline semantics as the slow path) ----
  if (mon != nullptr) {
    sim::Engine& engine = runtime_->engine();
    for (std::size_t pidx = 0; pidx < g.paths_.size(); ++pidx) {
      if (monitored[pidx] == 0) continue;
      const std::size_t i = g.paths_[pidx].plan_index;
      engine.schedule_callback(engine.now() + watch[i].deadline_s,
                               [mon, i] { mon->on_deadline(i); });
    }
  }

  // -- replay the precompiled op list ---------------------------------------
  // One flat walk; every op issues exactly one runtime call followed by one
  // issue-cost await, in the same order the uncompiled loop would. Chunk
  // heads re-check the watchdog (the once-per-(path, round) check of the
  // uncompiled loop) and skip the rest of a timed-out chunk group.
  bool skipping = false;
  for (const GraphOp& op : g.ops_) {
    if (op.chunk_head) {
      // Each (path, chunk) group's ops are contiguous, so one flag carries
      // the skip decision to the end of the group.
      skipping = monitored[op.path] != 0 &&
                 mon->entries[g.paths_[op.path].plan_index].timed_out;
    }
    if (skipping) continue;
    TransferGraph::Path& pi = g.paths_[op.path];
    const bool m = monitored[op.path] != 0;
    gpusim::CancelTokenPtr token =
        m ? mon->entries[pi.plan_index].token : nullptr;
    const std::size_t c = op.chunk;
    switch (op.kind) {
      case GraphOp::Kind::kCopyDirect: {
        const std::size_t sz = pi.chunk_sizes[c];
        const std::size_t src_at =
            src_offset + pi.offset + pi.chunk_offsets[c];
        const std::size_t dst_at =
            dst_offset + pi.offset + pi.chunk_offsets[c];
        gpusim::GpuRuntime::DoneHook hook;
        if (m) {
          hook = [mon, i = pi.plan_index, sz](bool delivered) {
            if (delivered) mon->entries[i].delivered += sz;
          };
        }
        runtime_->memcpy_async(dst, dst_at, src, src_at, sz, pi.first_stream,
                               std::move(token), std::move(hook));
        break;
      }
      case GraphOp::Kind::kWaitSlot:
        runtime_->wait_event(pi.first_stream, pi.bwd_events[c - 2]);
        break;
      case GraphOp::Kind::kCopyToStage: {
        gpusim::DeviceBuffer& stage = pi.lease.buffer();
        const std::size_t slot_off = (c % 2) * (stage.size() / 2);
        runtime_->memcpy_async(stage, slot_off, src,
                               src_offset + pi.offset + pi.chunk_offsets[c],
                               pi.chunk_sizes[c], pi.first_stream,
                               std::move(token));
        break;
      }
      case GraphOp::Kind::kRecordFwd:
        runtime_->record_event(pi.fwd_events[c], pi.first_stream);
        break;
      case GraphOp::Kind::kWaitFwd:
        runtime_->wait_event(pi.second_stream, pi.fwd_events[c]);
        break;
      case GraphOp::Kind::kStageDelay:
        runtime_->stream_delay(pi.second_stream, pi.extra_sync_s);
        break;
      case GraphOp::Kind::kCopyFromStage: {
        gpusim::DeviceBuffer& stage = pi.lease.buffer();
        const std::size_t slot_off = (c % 2) * (stage.size() / 2);
        runtime_->memcpy_async(dst,
                               dst_offset + pi.offset + pi.chunk_offsets[c],
                               stage, slot_off, pi.chunk_sizes[c],
                               pi.second_stream, std::move(token));
        break;
      }
      case GraphOp::Kind::kRecordBwd:
        runtime_->record_event(pi.bwd_events[c], pi.second_stream);
        if (m) ++mon->entries[pi.plan_index].records_issued;
        break;
    }
    co_await issue_cost();
  }

  // -- completion (same order as the slow path; leases are RETAINED) --------
  for (std::size_t pidx = 0; pidx < g.paths_.size(); ++pidx) {
    TransferGraph::Path& pi = g.paths_[pidx];
    if (!pi.staged) continue;
    co_await runtime_->synchronize(pi.second_stream);
    const bool timed_out =
        monitored[pidx] != 0 && mon->entries[pi.plan_index].timed_out;
    if (src.materialized() && dst.materialized() &&
        !pi.lease.buffer().materialized()) {
      const std::size_t land =
          timed_out
              ? static_cast<std::size_t>(mon->entries[pi.plan_index].delivered)
              : static_cast<std::size_t>(pi.bytes);
      if (land > 0) {
        std::memcpy(dst.region(dst_offset + pi.offset, land).data(),
                    src.region(src_offset + pi.offset, land).data(), land);
      }
    }
    // The staging lease stays with the template — that is the point of the
    // compiled graph (persistent reservation, no per-transfer acquire).
  }
  for (const TransferGraph::Path& pi : g.paths_) {
    if (pi.staged) continue;
    co_await runtime_->synchronize(pi.first_stream);
  }
  ++transfers_;
  // No event recycling either: the template keeps its reserved events.

  // -- assemble the outcome -------------------------------------------------
  TransferOutcome out;
  out.paths.resize(plan_size);
  for (std::size_t i = 0; i < plan_size; ++i) {
    out.paths[i].bytes = g.config_.paths[i].bytes;
    out.paths[i].bytes_delivered = g.config_.paths[i].bytes;
  }
  if (mon != nullptr) {
    for (std::size_t i = 0; i < plan_size; ++i) {
      MonitorState::Entry& e = mon->entries[i];
      if (e.timed_out) {
        out.paths[i].timed_out = true;
        out.paths[i].bytes_delivered = e.delivered;
        out.complete = false;
      } else {
        e.finished = true;  // disarm any still-pending watchdog timer
      }
    }
  }
  co_return out;
}

}  // namespace mpath::pipeline
