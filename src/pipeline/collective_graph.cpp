#include "mpath/pipeline/collective_graph.hpp"

#include <map>
#include <set>
#include <span>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "mpath/pipeline/channels.hpp"

namespace mpath::pipeline {

std::size_t CollectiveGraph::template_count() const {
  std::set<const TransferGraph*> uniq;
  for (const Step& s : steps_) {
    if (s.graph != nullptr) uniq.insert(s.graph.get());
  }
  return uniq.size();
}

ChainController::ChainController(ModelDrivenChannel& channel,
                                 ChainOptions options)
    : channel_(&channel), options_(options) {
  if (channel.options().recovery.enabled) {
    throw std::invalid_argument(
        "ChainController: recovery-enabled channels cannot chain (partial "
        "re-plans are not expressible as a frozen template)");
  }
  if (options_.cache_capacity == 0) {
    throw std::invalid_argument(
        "ChainController: cache_capacity must be positive");
  }
}

ChainController::~ChainController() { clear(); }

std::uint64_t ChainController::scheduler_epoch() const {
  TransferScheduler* sched = channel_->scheduler();
  return sched != nullptr ? sched->stats().capacity_events : 0;
}

bool ChainController::enter(const char* name, int world, std::uint64_t payload,
                            int algo, int variant, int base_tag) {
  if (active_) {
    if (base_tag == base_tag_) {
      ++refcount_;
      return true;
    }
    // Overlapping invocation of a *different* collective (no barrier
    // between them): the tap could not attribute messages, so the newcomer
    // runs unchained. Its own next non-overlapping invocation chains fine.
    ++stats_.bypasses;
    return false;
  }
  ChainKey key{name, world, algo, variant};
  ChainPtr chain = resolve(key, payload);
  if (chain != nullptr) {
    reset_iteration(*chain);
    capturing_ = false;
    ++stats_.iterations_replayed;
  } else {
    chain = std::make_shared<CollectiveGraph>();
    chain->key_ = std::move(key);
    chain->payload_ = payload;
    chain->state_ = CollectiveGraph::State::kCapturing;
    capturing_ = true;
    ++stats_.iterations_captured;
  }
  active_ = true;
  base_tag_ = base_tag;
  refcount_ = 1;
  inv_chain_ = std::move(chain);
  pending_ = {};
  return true;
}

void ChainController::leave() {
  if (!active_ || --refcount_ > 0) return;
  if (inv_chain_ != nullptr) {
    if (capturing_) {
      seal(inv_chain_);
    } else {
      // Close the replay iteration: depart every pre-admitted ticket no
      // replay claimed (round fell back mid-way, or a step stayed
      // passthrough after its round was batch-admitted).
      unwind_unclaimed(*inv_chain_);
    }
  }
  active_ = false;
  capturing_ = false;
  inv_chain_ = nullptr;
  pending_ = {};
}

ChainController::ChainPtr ChainController::resolve(const ChainKey& key,
                                                   std::uint64_t payload) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if ((*it)->key_ != key) continue;
    ChainPtr chain = *it;
    if (chain->cal_version_ != channel_->graph_cal_version()) {
      // Calibration superseded: every compiled split is stale.
      kill(*chain, &ChainStats::stale_cal_kills);
      return nullptr;
    }
    if (channel_->scheduler() != nullptr &&
        chain->capacity_epoch_ != scheduler_epoch()) {
      kill(*chain, &ChainStats::epoch_kills);
      return nullptr;
    }
    if (chain->payload_ != payload && !repatch(chain, payload)) {
      // The new payload does not scale the captured structure linearly;
      // recapture from scratch.
      kill(*chain, &ChainStats::mismatch_kills);
      return nullptr;
    }
    cache_.splice(cache_.begin(), cache_, it);
    return chain;
  }
  return nullptr;
}

void ChainController::seal(const ChainPtr& chain) {
  CollectiveGraph& c = *chain;
  if (c.aborted_ || c.steps_.empty()) return;  // nothing usable; discard
  // One private template per distinct (src, dst, bytes) among the
  // reproducible steps; identical steps share it (a same-instant collision
  // at replay falls back via busy()). Templates are chain-owned — never
  // shared with the channel's GraphCache, whose keys a payload re-patch
  // would silently desynchronize.
  std::map<std::tuple<topo::DeviceId, topo::DeviceId, std::uint64_t>, GraphPtr>
      dedupe;
  for (CollectiveGraph::Step& step : c.steps_) {
    if (!step.has_config) continue;
    const auto key = std::make_tuple(step.src_dev, step.dst_dev, step.bytes);
    auto it = dedupe.find(key);
    if (it != dedupe.end()) {
      step.graph = it->second;
      continue;
    }
    GraphPtr g;
    try {
      g = channel_->engine_->compile_graph(step.src_dev, step.dst_dev,
                                           step.config);
    } catch (const std::invalid_argument&) {
      g = nullptr;
    }
    if (g == nullptr) {
      // Staging pool exhausted (or a degenerate config): the step stays
      // passthrough; the rest of the chain is still worth keeping.
      ++stats_.compile_failures;
    } else if (channel_->scheduler() != nullptr) {
      g->set_capacity_epoch(channel_->scheduler()->stats().capacity_events);
    }
    dedupe.emplace(key, g);
    step.graph = std::move(g);
  }
  if (channel_->scheduler() != nullptr) enforce_round_homogeneity(c);
  build_rounds(c);
  c.cal_version_ = channel_->graph_cal_version();
  c.capacity_epoch_ = scheduler_epoch();
  c.state_ = CollectiveGraph::State::kReady;
  ++stats_.captures;
  cache_.push_front(chain);
  while (cache_.size() > options_.cache_capacity) cache_.pop_back();
}

void ChainController::build_rounds(CollectiveGraph& chain) {
  chain.rounds_.clear();
  std::map<int, std::uint32_t> round_of;
  for (std::uint32_t i = 0;
       i < static_cast<std::uint32_t>(chain.steps_.size()); ++i) {
    CollectiveGraph::Step& step = chain.steps_[i];
    if (step.graph == nullptr) continue;
    const auto [it, fresh] = round_of.emplace(
        step.rel_tag, static_cast<std::uint32_t>(chain.rounds_.size()));
    if (fresh) {
      chain.rounds_.emplace_back();
      chain.rounds_.back().rel_tag = step.rel_tag;
    }
    step.round = it->second;
    chain.rounds_[it->second].steps.push_back(i);
  }
}

void ChainController::enforce_round_homogeneity(CollectiveGraph& chain) {
  // A scheduled round is batch-admitted as a whole; a sibling multipath
  // step going through *fresh* admission would water-fill against its
  // round's pre-registered tickets. So a round either carries every one of
  // its multipath steps as templates, or none.
  std::set<int> bad_tags;
  for (const CollectiveGraph::Step& step : chain.steps_) {
    if (step.has_config && step.graph == nullptr) bad_tags.insert(step.rel_tag);
  }
  if (bad_tags.empty()) return;
  for (CollectiveGraph::Step& step : chain.steps_) {
    if (step.graph != nullptr && bad_tags.contains(step.rel_tag)) {
      step.graph = nullptr;
    }
  }
}

bool ChainController::repatch(const ChainPtr& chain, std::uint64_t payload) {
  CollectiveGraph& c = *chain;
  const std::uint64_t old = c.payload_;
  if (old == 0 || payload == 0) return false;
  // Proportional rescale with exact divisibility: every step's size must
  // scale by payload/old with no remainder, or the new payload would have
  // produced a structurally different capture (different splits/rounds).
  std::vector<std::uint64_t> scaled(c.steps_.size());
  for (std::size_t i = 0; i < c.steps_.size(); ++i) {
    const std::uint64_t b = c.steps_[i].bytes;
    const std::uint64_t prod = b * payload;
    if (b != 0 && prod / b != payload) return false;  // overflow
    if (prod % old != 0) return false;
    scaled[i] = prod / old;
    if (b != 0 && scaled[i] == 0) return false;
    if (c.steps_[i].patch_dropped &&
        scaled[i] >= channel_->options().min_multipath_bytes) {
      // An earlier re-patch dropped this step's template; the new payload
      // wants it multipath again. Only a recapture can rebuild it.
      return false;
    }
  }
  std::map<TransferGraph*, bool> patched;
  for (std::size_t i = 0; i < c.steps_.size(); ++i) {
    CollectiveGraph::Step& step = c.steps_[i];
    if (step.graph != nullptr) {
      if (scaled[i] < channel_->options().min_multipath_bytes) {
        // The uncaptured channel would go direct at this size; a multipath
        // replay would diverge from it. Drop to passthrough.
        step.graph = nullptr;
        step.patch_dropped = true;
        ++stats_.patch_failures;
      } else {
        // Shared templates (same src/dst/bytes tuple) patch once; the
        // verdict applies to every sharer identically.
        const auto [it, fresh] = patched.emplace(step.graph.get(), false);
        if (fresh) it->second = step.graph->patch(scaled[i]);
        if (!it->second) {
          step.graph = nullptr;
          step.patch_dropped = true;
          ++stats_.patch_failures;
        }
      }
    }
    step.bytes = scaled[i];
  }
  c.payload_ = payload;
  if (channel_->scheduler() != nullptr) enforce_round_homogeneity(c);
  build_rounds(c);
  ++stats_.patches;
  return true;
}

void ChainController::kill(CollectiveGraph& chain,
                           std::uint64_t ChainStats::* cause) {
  ++(stats_.*cause);
  // Unwind *synchronously*, before any fallback fresh admission can
  // water-fill against tickets no replay will ever claim.
  unwind_unclaimed(chain);
  chain.state_ = CollectiveGraph::State::kDead;
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->get() == &chain) {
      cache_.erase(it);
      break;
    }
  }
}

void ChainController::unwind_unclaimed(CollectiveGraph& chain) {
  TransferScheduler* sched = channel_->scheduler();
  if (sched == nullptr) return;
  std::vector<TransferScheduler::TicketId> victims;
  for (CollectiveGraph::Round& round : chain.rounds_) {
    if (!round.admitted) continue;
    for (std::size_t i = 0; i < round.tickets.size(); ++i) {
      if (round.claimed[i] == 0 &&
          round.tickets[i] != TransferScheduler::kInvalidTicket) {
        victims.push_back(round.tickets[i]);
        round.claimed[i] = 1;
      }
    }
    round.admitted = false;
  }
  if (!victims.empty()) {
    sched->depart_chain(
        std::span<const TransferScheduler::TicketId>(victims));
    stats_.unwound_tickets += victims.size();
  }
}

void ChainController::release_step_ticket(CollectiveGraph& chain,
                                          std::uint32_t step_idx) {
  TransferScheduler* sched = channel_->scheduler();
  if (sched == nullptr) return;
  CollectiveGraph::Round& round = chain.rounds_[chain.steps_[step_idx].round];
  if (!round.admitted) return;
  for (std::size_t i = 0; i < round.steps.size(); ++i) {
    if (round.steps[i] == step_idx && round.claimed[i] == 0) {
      const TransferScheduler::TicketId t = round.tickets[i];
      round.claimed[i] = 1;
      if (t != TransferScheduler::kInvalidTicket) {
        sched->depart_chain(std::span<const TransferScheduler::TicketId>(&t, 1));
        ++stats_.unwound_tickets;
      }
      return;
    }
  }
}

void ChainController::reset_iteration(CollectiveGraph& chain) {
  for (CollectiveGraph::Round& round : chain.rounds_) {
    round.attempted = false;
    round.admitted = false;
    round.tickets.clear();
    round.claimed.clear();
  }
}

void ChainController::on_transfer(const transport::TransferSite& site) {
  pending_ = {};
  if (!active_ || inv_chain_ == nullptr) return;
  const int rel = site.tag - base_tag_;
  if (rel < 0 || rel >= 64) return;  // not this collective's message
  CollectiveGraph& chain = *inv_chain_;
  const std::uint64_t key =
      CollectiveGraph::step_key(rel, site.src_rank, site.dst_rank);
  if (capturing_) {
    if (chain.aborted_) return;
    if (chain.steps_.size() >= options_.max_steps ||
        !chain.index_
             .emplace(key, static_cast<std::uint32_t>(chain.steps_.size()))
             .second) {
      // Overflow, or two messages with identical (tag, src, dst) in one
      // invocation — replay could not tell them apart. Give up; the
      // collective keeps running uncaptured.
      chain.aborted_ = true;
      ++stats_.capture_aborts;
      return;
    }
    CollectiveGraph::Step step;
    step.key = key;
    step.src_dev = site.src_device;
    step.dst_dev = site.dst_device;
    step.bytes = site.bytes;
    step.rel_tag = rel;
    chain.steps_.push_back(std::move(step));
    pending_.chain = &chain;
    pending_.step = static_cast<std::uint32_t>(chain.steps_.size() - 1);
    pending_.capture = true;
    return;
  }
  if (chain.state_ != CollectiveGraph::State::kReady) return;
  const auto it = chain.index_.find(key);
  if (it == chain.index_.end()) {
    // The algorithm produced a message the capture never saw: the chain no
    // longer describes this collective.
    kill(chain, &ChainStats::mismatch_kills);
    return;
  }
  const CollectiveGraph::Step& step = chain.steps_[it->second];
  if (step.bytes != site.bytes || step.src_dev != site.src_device ||
      step.dst_dev != site.dst_device) {
    kill(chain, &ChainStats::mismatch_kills);
    return;
  }
  pending_.chain = &chain;
  pending_.step = it->second;
  pending_.replay = true;
}

ChainController::Pending ChainController::take_pending() {
  return std::exchange(pending_, Pending{});
}

void ChainController::record_step(const Pending& p,
                                  const model::TransferConfig* config) {
  if (p.chain == nullptr || !p.capture) return;
  CollectiveGraph& chain = *p.chain;
  if (chain.aborted_ || p.step >= chain.steps_.size()) return;
  if (config != nullptr) {
    chain.steps_[p.step].config = *config;
    chain.steps_[p.step].has_config = true;
  }
}

ChainController::Claim ChainController::claim_step(const Pending& p) {
  Claim claim;
  if (p.chain == nullptr || !p.replay) return claim;
  CollectiveGraph& chain = *p.chain;
  if (chain.state_ != CollectiveGraph::State::kReady) return claim;
  CollectiveGraph::Step& step = chain.steps_[p.step];
  if (step.graph == nullptr) {
    ++stats_.passthrough_steps;
    return claim;
  }
  if (step.graph->busy()) {
    // The shared template is mid-replay (identical concurrent step): this
    // step alone falls back to the fresh path; the chain survives. Its
    // pre-admitted ticket (if its round already batch-admitted) departs
    // now so the fresh admission does not see its own phantom.
    ++stats_.busy_fallbacks;
    release_step_ticket(chain, p.step);
    return claim;
  }
  TransferScheduler* sched = channel_->scheduler();
  if (sched != nullptr) {
    if (chain.capacity_epoch_ != sched->stats().capacity_events) {
      kill(chain, &ChainStats::epoch_kills);
      return claim;
    }
    CollectiveGraph::Round& round = chain.rounds_[step.round];
    if (!round.attempted) {
      // First touch of this round this iteration: admit the whole round as
      // one batch — a single joint water-fill over every compiled carrying
      // path plus all live flows, accepted only if nothing is squeezed.
      round.attempted = true;
      std::vector<TransferScheduler::ChainStepRequest> reqs;
      reqs.reserve(round.steps.size());
      for (const std::uint32_t si : round.steps) {
        const CollectiveGraph::Step& s = chain.steps_[si];
        TransferScheduler::ChainStepRequest req;
        req.src = s.src_dev;
        req.dst = s.dst_dev;
        req.bytes = s.bytes;
        req.paths = std::span<const topo::PathPlan>(s.graph->key_paths());
        req.compiled = &s.graph->config();
        reqs.push_back(req);
      }
      std::vector<TransferScheduler::TicketId> tickets =
          sched->admit_chain(reqs);
      if (tickets.empty()) {
        ++stats_.contended_rounds;
      } else {
        round.admitted = true;
        round.tickets.clear();
        round.claimed.clear();
        for (const TransferScheduler::TicketId t : tickets) {
          round.tickets.push_back(t);
          round.claimed.push_back(0);
        }
      }
    }
    if (!round.admitted) return claim;  // contended round: fresh per step
    for (std::size_t i = 0; i < round.steps.size(); ++i) {
      if (round.steps[i] == p.step) {
        round.claimed[i] = 1;
        claim.ticket = round.tickets[i];
        break;
      }
    }
    if (claim.ticket == TransferScheduler::kInvalidTicket) return claim;
  }
  ++stats_.replayed_steps;
  claim.graph = step.graph;
  return claim;
}

void ChainController::clear() {
  if (inv_chain_ != nullptr) unwind_unclaimed(*inv_chain_);
  for (const ChainPtr& c : cache_) unwind_unclaimed(*c);
  cache_.clear();
  inv_chain_ = nullptr;
  capturing_ = false;
  pending_ = {};
}

}  // namespace mpath::pipeline
