#include "mpath/pipeline/health.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mpath::pipeline {

HealthOptions PathHealthManager::validated(const HealthOptions& options) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("PathHealthManager: " + what);
  };
  if (options.min_probe_bytes > options.max_probe_bytes) {
    // std::clamp(x, lo, hi) with lo > hi is undefined behaviour; reject it
    // here instead of letting probe_bytes() hit it on the hot path.
    fail("min_probe_bytes (" + std::to_string(options.min_probe_bytes) +
         ") > max_probe_bytes (" + std::to_string(options.max_probe_bytes) +
         ")");
  }
  if (!(options.probe_fraction >= 0.0 && options.probe_fraction <= 1.0)) {
    fail("probe_fraction must be in [0, 1]");
  }
  if (options.dead_after < 1) fail("dead_after must be >= 1");
  if (!(options.backoff >= 1.0)) fail("backoff must be >= 1");
  if (!(options.max_slack_factor >= 1.0)) {
    fail("max_slack_factor must be >= 1");
  }
  if (!(options.suspect_delay_s >= 0.0)) {
    fail("suspect_delay_s must be >= 0");
  }
  if (!(options.dead_cooldown_s >= 0.0)) {
    fail("dead_cooldown_s must be >= 0");
  }
  if (!(options.max_cooldown_s >= options.dead_cooldown_s)) {
    fail("max_cooldown_s must be >= dead_cooldown_s");
  }
  return options;
}

void PathHealthManager::partition(topo::DeviceId src, topo::DeviceId dst,
                                  const std::vector<topo::PathPlan>& candidates,
                                  double now,
                                  std::vector<topo::PathPlan>* active,
                                  std::vector<topo::PathPlan>* probes) const {
  active->clear();
  probes->clear();
  for (const topo::PathPlan& plan : candidates) {
    const auto it = entries_.find(key_of(src, dst, plan));
    if (it == entries_.end()) {
      active->push_back(plan);
    } else if (now >= it->second.next_probe_t) {
      probes->push_back(plan);
    }
    // Unhealthy and not yet due: excluded from this transfer entirely.
  }
}

void PathHealthManager::on_probe_issued(topo::DeviceId src,
                                        topo::DeviceId dst,
                                        const topo::PathPlan& plan) {
  Entry& e = entries_[key_of(src, dst, plan)];
  e.state = PathHealth::kProbation;
  ++stats_.probes_launched;
}

void PathHealthManager::on_timeout(topo::DeviceId src, topo::DeviceId dst,
                                   const topo::PathPlan& plan, double now) {
  ++stats_.timeouts;
  Entry& e = entries_[key_of(src, dst, plan)];
  if (e.state == PathHealth::kProbation) ++stats_.probes_failed;
  ++e.fail_streak;
  e.slack_mult =
      std::min(e.slack_mult * options_.backoff, options_.max_slack_factor);
  if (e.fail_streak >= options_.dead_after) {
    if (e.state != PathHealth::kDead) ++stats_.deaths;
    e.state = PathHealth::kDead;
    // Exponential readmission cooldown: first death waits dead_cooldown_s,
    // each further failed readmission probe doubles it (bounded).
    e.cooldown_s = e.cooldown_s <= 0.0
                       ? options_.dead_cooldown_s
                       : std::min(e.cooldown_s * options_.backoff,
                                  options_.max_cooldown_s);
    e.next_probe_t = now + e.cooldown_s;
  } else {
    e.state = PathHealth::kSuspect;
    e.next_probe_t = now + options_.suspect_delay_s;
  }
}

void PathHealthManager::on_success(topo::DeviceId src, topo::DeviceId dst,
                                   const topo::PathPlan& plan,
                                   double /*now*/) {
  const auto it = entries_.find(key_of(src, dst, plan));
  if (it == entries_.end()) return;
  if (it->second.state == PathHealth::kProbation) {
    // A probe slice delivered: the readmission mechanism worked.
    ++stats_.probes_succeeded;
    ++stats_.readmissions;
  } else {
    // A merely-suspect (or force-included dead) path delivered a regular
    // share before any probe was issued. It clears its tracked state, but
    // no probe proved anything — counting it as a readmission would
    // overstate the probation machinery.
    ++stats_.suspect_clears;
  }
  // Back to pristine healthy: streak, slack escalation and cooldown all
  // reset — a readmitted path is trusted like any other.
  entries_.erase(it);
}

double PathHealthManager::slack_multiplier(topo::DeviceId src,
                                           topo::DeviceId dst,
                                           const topo::PathPlan& plan) const {
  const auto it = entries_.find(key_of(src, dst, plan));
  return it != entries_.end() ? it->second.slack_mult : 1.0;
}

std::uint64_t PathHealthManager::probe_bytes(std::uint64_t total) const {
  const auto want = static_cast<std::uint64_t>(
      options_.probe_fraction * static_cast<double>(total));
  return std::min(total,
                  std::clamp(want, options_.min_probe_bytes,
                             options_.max_probe_bytes));
}

PathHealth PathHealthManager::state(topo::DeviceId src, topo::DeviceId dst,
                                    const topo::PathPlan& plan) const {
  const auto it = entries_.find(key_of(src, dst, plan));
  return it != entries_.end() ? it->second.state : PathHealth::kHealthy;
}

}  // namespace mpath::pipeline
