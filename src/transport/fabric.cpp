#include "mpath/transport/fabric.hpp"

#include <stdexcept>
#include <string>

namespace mpath::transport {

Fabric::Fabric(gpusim::GpuRuntime& runtime, gpusim::DataChannel& channel,
               TransportOptions options)
    : runtime_(&runtime), channel_(&channel), options_(options) {}

Fabric::~Fabric() = default;

Worker& Fabric::add_worker(int rank, topo::DeviceId device) {
  if (rank != static_cast<int>(workers_.size())) {
    throw std::invalid_argument(
        "Fabric::add_worker: ranks must be added densely from 0");
  }
  workers_.push_back(std::make_unique<Worker>(*this, rank, device));
  return *workers_.back();
}

Worker& Fabric::worker(int rank) {
  if (rank < 0 || rank >= worker_count()) {
    throw std::out_of_range("Fabric::worker: bad rank");
  }
  return *workers_[static_cast<std::size_t>(rank)];
}

Fabric::Wake& Fabric::wake_slot(double t) {
  auto [it, inserted] = wakes_.try_emplace(t);
  if (inserted) {
    ++wakeups_scheduled_;
    // One engine event serves every waiter and callback that lands on this
    // exact deadline: eager deliveries and rendezvous handshake delays are
    // fixed offsets from their trigger instant, so bursts pile onto the
    // same absolute time and previously cost one queue event each.
    runtime_->engine().schedule_callback(t, [this, t] {
      auto node = wakes_.extract(t);
      if (node.empty()) return;
      Wake& w = node.mapped();
      if (w.latch) w.latch->fire();
      for (auto& fn : w.fns) fn();
    });
  } else {
    ++wakeups_coalesced_;
  }
  return it->second;
}

sim::Task<void> Fabric::wake_at(double t) {
  Wake& w = wake_slot(t);
  if (!w.latch) w.latch = sim::make_pooled<sim::Latch>(runtime_->engine());
  auto latch = w.latch;  // keep alive across the wake_slot erase
  co_await latch->wait();
}

void Fabric::call_at(double t, sim::EventFn fn) {
  wake_slot(t).fns.push_back(std::move(fn));
}

namespace {
bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}

[[noreturn]] void throw_nacked(const char* what, int peer, int tag,
                               std::size_t bytes, double elapsed) {
  gpusim::TransferError::Info info;
  info.detail = std::string(what) + " rank " + std::to_string(peer) +
                " tag " + std::to_string(tag) +
                ": peer aborted (rendezvous NACK)";
  info.bytes_requested = bytes;
  info.bytes_delivered = 0;
  info.elapsed_s = elapsed;
  throw gpusim::TransferError("Worker: peer rendezvous failure",
                              std::move(info));
}
}  // namespace

void Worker::note_matched(int src, int tag, std::uint64_t seq) {
  auto& hwm = matched_hwm_[{src, tag}];
  if (seq > hwm) hwm = seq;
  // A live match supersedes any older failure notice for the channel.
  std::erase_if(nacks_, [&](const Nack& n) {
    return n.src_rank == src && n.tag == tag && n.seq <= hwm;
  });
}

bool Worker::nack_is_stale(const Nack& n) const {
  const auto it = matched_hwm_.find({n.src_rank, n.tag});
  return it != matched_hwm_.end() && n.seq <= it->second;
}

void Worker::deliver_nack(Nack n) {
  if (nack_is_stale(n)) {
    ++fabric_->nacks_stale_;
    return;
  }
  if (n.from_send) {
    // The send side of the channel died: fail a parked matching recv now.
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (!matches(it->src_rank, it->tag, n.src_rank, n.tag)) continue;
      *it->nacked = true;
      sim::Latch* done = it->done;
      posted_.erase(it);
      done->fire();
      return;
    }
  } else {
    // The recv side died; a matching send cannot be parked here (it would
    // have matched the recv), but check anyway for robustness.
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (!matches(n.src_rank, n.tag, it->src_rank, it->tag)) continue;
      *it->nacked = true;
      sim::Latch* done = it->done;
      unexpected_.erase(it);
      done->fire();
      return;
    }
  }
  // Nobody to fail yet: record it so the next matching operation fails
  // fast instead of parking for a full timeout of its own.
  nacks_.push_back(n);
}

sim::Task<void> Worker::send(int dst_rank, const gpusim::DeviceBuffer& buf,
                             std::size_t offset, std::size_t bytes, int tag) {
  buf.check_region(offset, bytes);  // validate eagerly
  if (tag < 0) {
    throw std::invalid_argument("Worker::send: tag must be non-negative");
  }
  Worker& receiver = fabric_->worker(dst_rank);
  ++fabric_->messages_;
  fabric_->bytes_ += bytes;

  // A recorded peer failure on this channel fails the send immediately —
  // the symmetric counterpart of the recv-side NACK below.
  for (auto it = receiver.nacks_.begin(); it != receiver.nacks_.end(); ++it) {
    if (it->from_send || !matches(it->src_rank, it->tag, rank_, tag)) {
      continue;
    }
    receiver.nacks_.erase(it);
    throw_nacked("Worker::send: to", dst_rank, tag, bytes, 0.0);
  }

  SendEntry entry{rank_, tag, bytes, &buf, offset, device_, nullptr};

  // Second arrival drives the transfer: look for a matching posted recv.
  for (auto it = receiver.posted_.begin(); it != receiver.posted_.end();
       ++it) {
    if (!matches(it->src_rank, it->tag, rank_, tag)) continue;
    if (it->bytes < bytes) {
      throw std::runtime_error("Worker::send: receive buffer too small");
    }
    RecvEntry recv = *it;
    receiver.posted_.erase(it);
    receiver.note_matched(rank_, tag, recv.seq);
    co_await receiver.do_transfer(entry, recv);
    recv.done->fire();
    co_return;
  }

  // No recv posted yet: park in the receiver's unexpected queue.
  sim::Engine& engine = fabric_->runtime_->engine();
  sim::Latch done(engine);
  bool nacked = false;
  entry.done = &done;
  entry.nacked = &nacked;
  entry.seq = ++receiver.next_seq_;
  receiver.unexpected_.push_back(entry);
  // Rendezvous watchdog: a peer that never posts the matching recv would
  // otherwise park this coroutine forever. The timer resolves the entry by
  // its unique seq; if the entry already matched, the callback finds
  // nothing and must not touch the (then dead) stack frame. On abort, a
  // NACK makes the failure symmetric: the recv side of the channel fails
  // too instead of parking through its own full timeout.
  const double timeout = fabric_->options_.rendezvous_timeout_s;
  const double t0 = engine.now();
  bool timed_out = false;
  if (timeout > 0.0 && bytes > fabric_->options_.eager_threshold) {
    Worker* r = &receiver;
    Fabric* fabric = fabric_;
    const std::uint64_t seq = entry.seq;
    const int src = rank_;
    fabric_->call_at(engine.now() + timeout,
                     [r, fabric, seq, src, tag, &done, &timed_out] {
      for (auto it = r->unexpected_.begin(); it != r->unexpected_.end();
           ++it) {
        if (it->seq != seq) continue;
        r->unexpected_.erase(it);
        timed_out = true;
        ++fabric->nacks_sent_;
        fabric->call_at(
            fabric->runtime_->engine().now() + fabric->options_.eager_overhead_s,
            [r, n = Nack{src, tag, seq, /*from_send=*/true}] {
              r->deliver_nack(n);
            });
        done.fire();
        return;
      }
    });
  }
  co_await done.wait();
  if (nacked) {
    throw_nacked("Worker::send: to", dst_rank, tag, bytes, engine.now() - t0);
  }
  if (timed_out) {
    ++fabric_->rendezvous_timeouts_;
    gpusim::TransferError::Info info;
    info.detail = "rendezvous send to rank " + std::to_string(dst_rank) +
                  " tag " + std::to_string(tag) + ": no matching recv";
    info.bytes_requested = bytes;
    info.bytes_delivered = 0;
    info.elapsed_s = timeout;
    throw gpusim::TransferError("Worker::send: rendezvous timeout",
                                std::move(info));
  }
}

sim::Task<void> Worker::recv(int src_rank, gpusim::DeviceBuffer& buf,
                             std::size_t offset, std::size_t bytes, int tag) {
  buf.check_region(offset, bytes);

  // Fail fast on a recorded peer failure (the send side of this channel
  // already aborted and NACKed).
  for (auto it = nacks_.begin(); it != nacks_.end(); ++it) {
    if (!it->from_send || !matches(src_rank, tag, it->src_rank, it->tag)) {
      continue;
    }
    const int peer = it->src_rank;
    nacks_.erase(it);
    throw_nacked("Worker::recv: from", peer, tag, bytes, 0.0);
  }

  RecvEntry entry{src_rank, tag, bytes, &buf, offset, nullptr};

  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(src_rank, tag, it->src_rank, it->tag)) continue;
    if (bytes < it->bytes) {
      throw std::runtime_error("Worker::recv: receive buffer too small");
    }
    SendEntry send = *it;
    unexpected_.erase(it);
    note_matched(send.src_rank, send.tag, send.seq);
    co_await do_transfer(send, entry);
    send.done->fire();
    co_return;
  }

  sim::Engine& engine = fabric_->runtime_->engine();
  sim::Latch done(engine);
  bool nacked = false;
  entry.done = &done;
  entry.nacked = &nacked;
  entry.seq = ++next_seq_;
  posted_.push_back(entry);
  const double timeout = fabric_->options_.rendezvous_timeout_s;
  const double t0 = engine.now();
  bool timed_out = false;
  if (timeout > 0.0 && bytes > fabric_->options_.eager_threshold) {
    Fabric* fabric = fabric_;
    const std::uint64_t seq = entry.seq;
    fabric_->call_at(engine.now() + timeout,
                     [this, fabric, seq, src_rank, tag, &done, &timed_out] {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (it->seq != seq) continue;
        posted_.erase(it);
        timed_out = true;
        // NACK the sender side — only possible for a concrete channel; a
        // wildcard recv names no peer to notify.
        if (src_rank != kAnySource && tag != kAnyTag) {
          ++fabric->nacks_sent_;
          fabric->call_at(fabric->runtime_->engine().now() +
                              fabric->options_.eager_overhead_s,
                          [w = this, n = Nack{src_rank, tag, seq,
                                              /*from_send=*/false}] {
                            w->deliver_nack(n);
                          });
        }
        done.fire();
        return;
      }
    });
  }
  co_await done.wait();
  if (nacked) {
    throw_nacked("Worker::recv: from", src_rank, tag, bytes,
                 engine.now() - t0);
  }
  if (timed_out) {
    ++fabric_->rendezvous_timeouts_;
    gpusim::TransferError::Info info;
    info.detail = "rendezvous recv from rank " + std::to_string(src_rank) +
                  " tag " + std::to_string(tag) + ": no matching send";
    info.bytes_requested = bytes;
    info.bytes_delivered = 0;
    info.elapsed_s = timeout;
    throw gpusim::TransferError("Worker::recv: rendezvous timeout",
                                std::move(info));
  }
}

sim::Task<void> Worker::do_transfer(const SendEntry& send,
                                    const RecvEntry& recv) {
  gpusim::GpuRuntime& rt = *fabric_->runtime_;
  const TransportOptions& opt = fabric_->options_;
  if (send.bytes <= opt.eager_threshold) {
    ++fabric_->eager_;
    // Same-deadline eager deliveries share one engine event (a burst of k
    // small messages matched at one instant previously cost k timers).
    co_await fabric_->wake_at(rt.engine().now() + opt.eager_overhead_s);
  } else {
    ++fabric_->rendezvous_;
    // RTS/CTS handshake, then the sender maps the receiver's buffer via
    // CUDA IPC (cached after the first open) and PUTs into it. The
    // handshake delay coalesces per deadline like eager delivery.
    co_await fabric_->wake_at(rt.engine().now() + rt.costs().rendezvous_s);
    co_await rt.ipc_open(send.src_device, *recv.buf);
  }
  if (fabric_->tap_) {
    // Synchronous prefix of the channel transfer (no suspension between the
    // tap and the transfer call): a chained-collective controller can stage
    // a pending replay step here and the channel consumes it first thing.
    fabric_->tap_(TransferSite{send.src_rank, rank_, send.tag, send.bytes,
                               send.src_device, recv.buf->device()});
  }
  co_await fabric_->channel_->transfer(*recv.buf, recv.offset, *send.buf,
                                       send.offset, send.bytes);
}

}  // namespace mpath::transport
