#include "mpath/transport/fabric.hpp"

#include <stdexcept>
#include <string>

namespace mpath::transport {

Fabric::Fabric(gpusim::GpuRuntime& runtime, gpusim::DataChannel& channel,
               TransportOptions options)
    : runtime_(&runtime), channel_(&channel), options_(options) {}

Fabric::~Fabric() = default;

Worker& Fabric::add_worker(int rank, topo::DeviceId device) {
  if (rank != static_cast<int>(workers_.size())) {
    throw std::invalid_argument(
        "Fabric::add_worker: ranks must be added densely from 0");
  }
  workers_.push_back(std::make_unique<Worker>(*this, rank, device));
  return *workers_.back();
}

Worker& Fabric::worker(int rank) {
  if (rank < 0 || rank >= worker_count()) {
    throw std::out_of_range("Fabric::worker: bad rank");
  }
  return *workers_[static_cast<std::size_t>(rank)];
}

namespace {
bool matches(int want_src, int want_tag, int src, int tag) {
  return (want_src == kAnySource || want_src == src) &&
         (want_tag == kAnyTag || want_tag == tag);
}
}  // namespace

sim::Task<void> Worker::send(int dst_rank, const gpusim::DeviceBuffer& buf,
                             std::size_t offset, std::size_t bytes, int tag) {
  buf.check_region(offset, bytes);  // validate eagerly
  if (tag < 0) {
    throw std::invalid_argument("Worker::send: tag must be non-negative");
  }
  Worker& receiver = fabric_->worker(dst_rank);
  ++fabric_->messages_;
  fabric_->bytes_ += bytes;

  SendEntry entry{rank_, tag, bytes, &buf, offset, device_, nullptr};

  // Second arrival drives the transfer: look for a matching posted recv.
  for (auto it = receiver.posted_.begin(); it != receiver.posted_.end();
       ++it) {
    if (!matches(it->src_rank, it->tag, rank_, tag)) continue;
    if (it->bytes < bytes) {
      throw std::runtime_error("Worker::send: receive buffer too small");
    }
    RecvEntry recv = *it;
    receiver.posted_.erase(it);
    co_await receiver.do_transfer(entry, recv);
    recv.done->fire();
    co_return;
  }

  // No recv posted yet: park in the receiver's unexpected queue.
  sim::Engine& engine = fabric_->runtime_->engine();
  sim::Latch done(engine);
  entry.done = &done;
  entry.seq = ++receiver.next_seq_;
  receiver.unexpected_.push_back(entry);
  // Rendezvous watchdog: a peer that never posts the matching recv would
  // otherwise park this coroutine forever. The timer resolves the entry by
  // its unique seq; if the entry already matched, the callback finds
  // nothing and must not touch the (then dead) stack frame.
  const double timeout = fabric_->options_.rendezvous_timeout_s;
  bool timed_out = false;
  if (timeout > 0.0 && bytes > fabric_->options_.eager_threshold) {
    Worker* r = &receiver;
    const std::uint64_t seq = entry.seq;
    engine.schedule_callback(engine.now() + timeout,
                             [r, seq, &done, &timed_out] {
      for (auto it = r->unexpected_.begin(); it != r->unexpected_.end();
           ++it) {
        if (it->seq != seq) continue;
        r->unexpected_.erase(it);
        timed_out = true;
        done.fire();
        return;
      }
    });
  }
  co_await done.wait();
  if (timed_out) {
    ++fabric_->rendezvous_timeouts_;
    gpusim::TransferError::Info info;
    info.detail = "rendezvous send to rank " + std::to_string(dst_rank) +
                  " tag " + std::to_string(tag) + ": no matching recv";
    info.bytes_requested = bytes;
    info.bytes_delivered = 0;
    info.elapsed_s = timeout;
    throw gpusim::TransferError("Worker::send: rendezvous timeout",
                                std::move(info));
  }
}

sim::Task<void> Worker::recv(int src_rank, gpusim::DeviceBuffer& buf,
                             std::size_t offset, std::size_t bytes, int tag) {
  buf.check_region(offset, bytes);
  RecvEntry entry{src_rank, tag, bytes, &buf, offset, nullptr};

  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(src_rank, tag, it->src_rank, it->tag)) continue;
    if (bytes < it->bytes) {
      throw std::runtime_error("Worker::recv: receive buffer too small");
    }
    SendEntry send = *it;
    unexpected_.erase(it);
    co_await do_transfer(send, entry);
    send.done->fire();
    co_return;
  }

  sim::Engine& engine = fabric_->runtime_->engine();
  sim::Latch done(engine);
  entry.done = &done;
  entry.seq = ++next_seq_;
  posted_.push_back(entry);
  const double timeout = fabric_->options_.rendezvous_timeout_s;
  bool timed_out = false;
  if (timeout > 0.0 && bytes > fabric_->options_.eager_threshold) {
    const std::uint64_t seq = entry.seq;
    engine.schedule_callback(engine.now() + timeout,
                             [this, seq, &done, &timed_out] {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (it->seq != seq) continue;
        posted_.erase(it);
        timed_out = true;
        done.fire();
        return;
      }
    });
  }
  co_await done.wait();
  if (timed_out) {
    ++fabric_->rendezvous_timeouts_;
    gpusim::TransferError::Info info;
    info.detail = "rendezvous recv from rank " + std::to_string(src_rank) +
                  " tag " + std::to_string(tag) + ": no matching send";
    info.bytes_requested = bytes;
    info.bytes_delivered = 0;
    info.elapsed_s = timeout;
    throw gpusim::TransferError("Worker::recv: rendezvous timeout",
                                std::move(info));
  }
}

sim::Task<void> Worker::do_transfer(const SendEntry& send,
                                    const RecvEntry& recv) {
  gpusim::GpuRuntime& rt = *fabric_->runtime_;
  const TransportOptions& opt = fabric_->options_;
  if (send.bytes <= opt.eager_threshold) {
    ++fabric_->eager_;
    co_await rt.engine().delay(opt.eager_overhead_s);
  } else {
    ++fabric_->rendezvous_;
    // RTS/CTS handshake, then the sender maps the receiver's buffer via
    // CUDA IPC (cached after the first open) and PUTs into it.
    co_await rt.engine().delay(rt.costs().rendezvous_s);
    co_await rt.ipc_open(send.src_device, *recv.buf);
  }
  co_await fabric_->channel_->transfer(*recv.buf, recv.offset, *send.buf,
                                       send.offset, send.bytes);
}

}  // namespace mpath::transport
