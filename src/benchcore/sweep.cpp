#include "mpath/benchcore/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <thread>

namespace mpath::benchcore {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : jobs_(options.jobs > 0 ? options.jobs : hardware_jobs()) {
  stats_.jobs = jobs_;
}

int SweepRunner::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void SweepRunner::dispatch(std::size_t n, void* ctx, ScenarioFn invoke) {
  if (n == 0) return;
  const auto workers = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));
  const auto t0 = Clock::now();

  // One contiguous block per worker; the atomic cursor is both the local
  // work source and the steal target. Cache-line alignment keeps cursor
  // traffic from false-sharing between workers.
  struct alignas(64) Block {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };
  std::vector<Block> blocks(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    const auto uw = static_cast<std::size_t>(w);
    blocks[uw].next.store(n * uw / static_cast<std::size_t>(workers),
                          std::memory_order_relaxed);
    blocks[uw].end = n * (uw + 1) / static_cast<std::size_t>(workers);
  }

  struct alignas(64) WorkerLog {
    double busy_s = 0.0;
    std::uint64_t ran = 0;
    std::uint64_t steals = 0;
    std::size_t error_index = std::numeric_limits<std::size_t>::max();
    std::exception_ptr error;
  };
  std::vector<WorkerLog> logs(static_cast<std::size_t>(workers));

  auto work = [&](int w) {
    WorkerLog& log = logs[static_cast<std::size_t>(w)];
    const auto run_one = [&](std::size_t i, bool stolen) {
      const auto s0 = Clock::now();
      try {
        invoke(ctx, i);
      } catch (...) {
        // Keep running the rest of the grid; remember the lowest-index
        // failure so the rethrown error is schedule-independent.
        if (i < log.error_index) {
          log.error_index = i;
          log.error = std::current_exception();
        }
      }
      log.busy_s += seconds_since(s0);
      ++log.ran;
      if (stolen) ++log.steals;
    };
    // Drain the home block, then sweep the others for leftovers.
    for (int step = 0; step < workers; ++step) {
      Block& b = blocks[static_cast<std::size_t>((w + step) % workers)];
      for (;;) {
        const std::size_t i = b.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= b.end) break;
        run_one(i, step != 0);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) pool.emplace_back(work, w);
  work(0);  // the caller is worker 0; --jobs 1 never spawns a thread
  for (auto& t : pool) t.join();

  stats_.scenarios += n;
  stats_.wall_s += seconds_since(t0);
  if (stats_.worker_busy_s.size() < static_cast<std::size_t>(workers)) {
    stats_.worker_busy_s.resize(static_cast<std::size_t>(workers), 0.0);
    stats_.worker_scenarios.resize(static_cast<std::size_t>(workers), 0);
  }
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  for (int w = 0; w < workers; ++w) {
    const auto uw = static_cast<std::size_t>(w);
    stats_.worker_busy_s[uw] += logs[uw].busy_s;
    stats_.worker_scenarios[uw] += logs[uw].ran;
    stats_.steals += logs[uw].steals;
    if (logs[uw].error_index < error_index) {
      error_index = logs[uw].error_index;
      error = logs[uw].error;
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace mpath::benchcore
