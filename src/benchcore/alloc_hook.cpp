// Counting replacement for the global allocator. Replaceable-function
// semantics ([new.delete]): defining these signatures in any linked TU
// routes every ::operator new / ::operator delete in the process through
// them, including the standard library's.
//
// The counters are relaxed atomics: the simulator is single-threaded, but
// Google Benchmark's timer threads may allocate concurrently.
#include "mpath/benchcore/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t n, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (n == 0) n = 1;
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (n + align - 1) / align * align)
                : std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
}  // namespace

namespace mpath::benchcore {
std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t free_count() { return g_frees.load(std::memory_order_relaxed); }
bool alloc_hook_active() { return true; }
}  // namespace mpath::benchcore

void* operator new(std::size_t n) {
  return counted_alloc(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n) {
  return counted_alloc(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(n, alignof(std::max_align_t));
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
