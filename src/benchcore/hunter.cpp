#include "mpath/benchcore/hunter.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "mpath/benchcore/metrics.hpp"
#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/model/configurator.hpp"
#include "mpath/tuning/calibration.hpp"
#include "mpath/util/fsio.hpp"
#include "mpath/util/rng.hpp"
#include "mpath/util/units.hpp"

namespace mpath::fuzz {

namespace {

using model::MispredictKind;

bool same_policy(const topo::PathPolicy& a, const topo::PathPolicy& b) {
  return a.max_gpu_staged == b.max_gpu_staged &&
         a.include_host == b.include_host;
}

MispredictKind combine(MispredictKind a, MispredictKind b) {
  const bool err = model::covers(a, MispredictKind::kError) ||
                   model::covers(b, MispredictKind::kError);
  const bool reg = model::covers(a, MispredictKind::kRegret) ||
                   model::covers(b, MispredictKind::kRegret);
  if (err && reg) return MispredictKind::kBoth;
  if (err) return MispredictKind::kError;
  if (reg) return MispredictKind::kRegret;
  return MispredictKind::kNone;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario serialization
// ---------------------------------------------------------------------------

util::json::Value Scenario::to_json() const {
  using util::json::Array;
  using util::json::Value;
  Value v{util::json::Object{}};
  v.set("schema", "mpath-fuzz-scenario-v1");
  // Seeds use the full 64-bit space; a JSON number (double) only holds 53
  // bits exactly, so the seed is stored as a decimal string.
  v.set("seed", std::to_string(seed));
  v.set("note", note);
  v.set("expected", model::to_string(expected));
  Array tr;
  for (const TransferCase& t : transfers) {
    Value tv{util::json::Object{}};
    tv.set("src", std::uint64_t{t.src});
    tv.set("dst", std::uint64_t{t.dst});
    tv.set("bytes", std::uint64_t{t.bytes});
    tv.set("max_gpu_staged", t.policy.max_gpu_staged);
    tv.set("include_host", t.policy.include_host);
    tr.push_back(std::move(tv));
  }
  v.set("transfers", std::move(tr));
  v.set("topology", topo.to_json());
  return v;
}

Scenario Scenario::from_json(const util::json::Value& v) {
  const std::string& schema = v.at("schema").as_string();
  if (schema != "mpath-fuzz-scenario-v1") {
    throw util::json::Error("unknown scenario schema: " + schema);
  }
  Scenario sc;
  sc.seed = std::strtoull(v.at("seed").as_string().c_str(), nullptr, 10);
  sc.note = v.get_or("note", util::json::Value("")).as_string();
  sc.expected = model::mispredict_kind_from_string(
      v.get_or("expected", util::json::Value("none")).as_string());
  for (const util::json::Value& tv : v.at("transfers").as_array()) {
    TransferCase t;
    t.src = static_cast<topo::DeviceId>(tv.at("src").as_uint());
    t.dst = static_cast<topo::DeviceId>(tv.at("dst").as_uint());
    t.bytes = tv.at("bytes").as_uint();
    t.policy.max_gpu_staged =
        static_cast<int>(tv.at("max_gpu_staged").as_int());
    t.policy.include_host = tv.at("include_host").as_bool();
    sc.transfers.push_back(t);
  }
  sc.topo = TopoSpec::from_json(v.at("topology"));
  return sc;
}

void save_scenario(const Scenario& scenario, const std::string& path) {
  util::write_file_atomic(path, scenario.to_json().dump(2));
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open scenario: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return Scenario::from_json(util::json::Value::parse(buf.str()));
  } catch (const util::json::Error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<CorpusEntry> load_corpus(const std::string& dir) {
  std::vector<CorpusEntry> corpus;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return corpus;
  std::vector<std::string> paths;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".json") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) corpus.push_back({p, load_scenario(p)});
  return corpus;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

Scenario generate_scenario(std::uint64_t seed,
                           const GeneratorOptions& options) {
  Scenario sc;
  sc.seed = seed;
  sc.topo = generate_topology(seed, options);
  util::Rng rng(mix_seed(seed, 0x5CE7A210ull));
  std::vector<topo::DeviceId> gpus;
  for (std::size_t i = 0; i < sc.topo.devices.size(); ++i) {
    if (sc.topo.devices[i].kind == topo::DeviceKind::Gpu) {
      gpus.push_back(static_cast<topo::DeviceId>(i));
    }
  }
  const auto n = static_cast<std::int64_t>(gpus.size());
  const std::int64_t n_transfers = rng.uniform_int(1, 2);
  for (std::int64_t t = 0; t < n_transfers; ++t) {
    TransferCase tc;
    const std::int64_t a = rng.uniform_int(0, n - 1);
    std::int64_t b = a;
    while (b == a) b = rng.uniform_int(0, n - 1);
    tc.src = gpus[static_cast<std::size_t>(a)];
    tc.dst = gpus[static_cast<std::size_t>(b)];
    // Power-of-two sizes across the paper's sweep range (2 MB - 256 MB),
    // with an occasional 1.5x off-grid size to exercise rounding.
    tc.bytes = std::uint64_t{1} << rng.uniform_int(21, 28);
    if (rng.uniform(0.0, 1.0) < 0.3) tc.bytes += tc.bytes / 2;
    const std::vector<topo::PathPolicy>& pols = enumerated_policies();
    tc.policy = pols[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pols.size()) - 1))];
    sc.transfers.push_back(tc);
  }
  return sc;
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

const std::vector<topo::PathPolicy>& enumerated_policies() {
  static const std::vector<topo::PathPolicy> kPolicies = {
      topo::PathPolicy::direct_only(), topo::PathPolicy::two_gpus(),
      topo::PathPolicy::three_gpus(),
      topo::PathPolicy::three_gpus_with_host()};
  return kPolicies;
}

namespace {

/// Observed bandwidth of one transfer under `policy` on a fresh private
/// stack; optionally also the model's prediction from the same
/// configurator state the stack planned with.
double run_policy(const topo::System& system,
                  const model::ModelRegistry& registry,
                  const TransferCase& tc, const topo::PathPolicy& policy,
                  sim::FluidNetwork::SolverMode solver, double* predicted) {
  const std::vector<topo::DeviceId> gpus = system.topology.gpus();
  const auto rank_of = [&](topo::DeviceId d) {
    const auto it = std::find(gpus.begin(), gpus.end(), d);
    if (it == gpus.end()) {
      throw std::invalid_argument("fuzz scenario: transfer endpoint " +
                                  std::to_string(d) + " is not a GPU");
    }
    return static_cast<int>(it - gpus.begin());
  };
  model::PathConfigurator configurator(registry);
  // Shared-edge composition: let the model see candidates whose hop routes
  // collide on one link (the planted-xgmi-ring fixture's NVLink+xGMI pair).
  configurator.set_topology(&system.topology);
  benchcore::SimStack stack =
      benchcore::SimStack::model_driven(system, configurator, policy);
  stack.network().set_solver_mode(solver);
  benchcore::P2POptions p2p;
  p2p.window = 1;
  p2p.iterations = 3;
  p2p.warmup = 1;
  p2p.src_rank = rank_of(tc.src);
  p2p.dst_rank = rank_of(tc.dst);
  const double bw = benchcore::measure_bw(stack.world(), tc.bytes, p2p);
  if (predicted != nullptr) {
    *predicted = benchcore::predicted_bandwidth(
        configurator, system.topology, tc.src, tc.dst, tc.bytes, policy);
  }
  return bw;
}

}  // namespace

ScenarioReport evaluate_scenario(const Scenario& scenario,
                                 const EvalOptions& options) {
  ScenarioReport report;
  report.scenario = scenario;
  if (scenario.transfers.empty()) {
    throw std::invalid_argument("fuzz scenario: no transfers");
  }
  topo::System system = scenario.topo.build();
  // Pre-compute routes once; sweep workers then only read the cache.
  system.topology.warm_route_cache();
  const model::ModelRegistry registry =
      options.measured_calibration ? tuning::calibrate(system)
                                   : tuning::registry_from_topology(system);
  for (const TransferCase& tc : scenario.transfers) {
    if (tc.src == tc.dst || tc.bytes == 0) {
      throw std::invalid_argument("fuzz scenario: bad transfer case");
    }
    CaseOutcome out;
    out.transfer = tc;
    out.observed_bw = run_policy(system, registry, tc, tc.policy,
                                 options.solver, &out.predicted_bw);
    out.best_bw = out.observed_bw;
    out.best_policy = tc.policy;
    for (const topo::PathPolicy& policy : enumerated_policies()) {
      if (same_policy(policy, tc.policy)) continue;
      const double bw =
          run_policy(system, registry, tc, policy, options.solver, nullptr);
      if (bw > out.best_bw) {
        out.best_bw = bw;
        out.best_policy = policy;
      }
    }
    out.error = model::prediction_error(out.predicted_bw, out.observed_bw);
    out.regret = model::policy_regret(out.observed_bw, out.best_bw);
    out.kind = model::classify(out.error, out.regret, options.thresholds);
    report.max_error = std::max(report.max_error, out.error);
    report.max_regret = std::max(report.max_regret, out.regret);
    report.kind = combine(report.kind, out.kind);
    report.outcomes.push_back(out);
  }
  return report;
}

HuntResult run_hunt(const HuntOptions& options) {
  benchcore::SweepRunner runner(benchcore::SweepOptions{options.jobs});
  HuntResult result;
  result.reports = runner.run(options.count, [&](std::size_t i) {
    return evaluate_scenario(
        generate_scenario(mix_seed(options.seed, i), options.generator),
        options.eval);
  });
  result.sweep = runner.stats();
  return result;
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

namespace {

/// Scenario with device `victim` removed: edges and memory channels
/// touching it dropped, higher device ids (including transfer endpoints)
/// shifted down by one.
Scenario drop_device(const Scenario& s, topo::DeviceId victim) {
  Scenario out = s;
  out.topo.devices.clear();
  out.topo.edges.clear();
  out.topo.mem_channels.clear();
  const auto remap = [victim](topo::DeviceId id) {
    return id > victim ? id - 1 : id;
  };
  for (std::size_t i = 0; i < s.topo.devices.size(); ++i) {
    if (static_cast<topo::DeviceId>(i) != victim) {
      out.topo.devices.push_back(s.topo.devices[i]);
    }
  }
  for (const EdgeSpec& e : s.topo.edges) {
    if (e.from == victim || e.to == victim) continue;
    EdgeSpec copy = e;
    copy.from = remap(copy.from);
    copy.to = remap(copy.to);
    out.topo.edges.push_back(copy);
  }
  for (const MemChannelSpec& m : s.topo.mem_channels) {
    if (m.host == victim) continue;
    MemChannelSpec copy = m;
    copy.host = remap(copy.host);
    out.topo.mem_channels.push_back(copy);
  }
  for (TransferCase& t : out.transfers) {
    t.src = remap(t.src);
    t.dst = remap(t.dst);
  }
  return out;
}

/// Scenario with every edge (both directions) between the endpoints of
/// `s.topo.edges[group]` of the same link kind removed.
Scenario drop_edge_group(const Scenario& s, std::size_t group) {
  const EdgeSpec& g = s.topo.edges[group];
  Scenario out = s;
  out.topo.edges.clear();
  for (const EdgeSpec& e : s.topo.edges) {
    const bool same_pair = (e.from == g.from && e.to == g.to) ||
                           (e.from == g.to && e.to == g.from);
    if (same_pair && e.kind == g.kind) continue;
    out.topo.edges.push_back(e);
  }
  return out;
}

}  // namespace

Scenario minimize_scenario(const Scenario& scenario,
                           const EvalOptions& options) {
  const ScenarioReport base = evaluate_scenario(scenario, options);
  if (!base.flagged()) return scenario;
  const MispredictKind want = base.kind;

  const auto reproduces = [&](const Scenario& candidate) {
    try {
      const topo::System sys = candidate.topo.build();
      if (!fully_routable(sys.topology)) return false;
      return model::covers(evaluate_scenario(candidate, options).kind, want);
    } catch (const std::exception&) {
      return false;
    }
  };

  Scenario best = scenario;
  bool changed = true;
  while (changed) {
    changed = false;
    // 1. Fewer transfers.
    while (best.transfers.size() > 1) {
      bool cut = false;
      for (std::size_t i = 0; i < best.transfers.size(); ++i) {
        Scenario cand = best;
        cand.transfers.erase(cand.transfers.begin() +
                             static_cast<std::ptrdiff_t>(i));
        if (reproduces(cand)) {
          best = std::move(cand);
          cut = changed = true;
          break;
        }
      }
      if (!cut) break;
    }
    // 2. Fewer devices. Only unreferenced devices are candidates; build()
    //    and fully_routable() veto cuts that break connectivity.
    for (std::size_t d = 0; d < best.topo.devices.size(); ++d) {
      const auto id = static_cast<topo::DeviceId>(d);
      const bool referenced = std::any_of(
          best.transfers.begin(), best.transfers.end(),
          [id](const TransferCase& t) { return t.src == id || t.dst == id; });
      if (referenced) continue;
      Scenario cand = drop_device(best, id);
      if (reproduces(cand)) {
        best = std::move(cand);
        changed = true;
        break;  // device ids shifted; restart the scan
      }
    }
    // 3. Fewer links (whole duplex groups at a time).
    for (std::size_t e = 0; e < best.topo.edges.size(); ++e) {
      Scenario cand = drop_edge_group(best, e);
      if (cand.topo.edges.size() < best.topo.edges.size() &&
          reproduces(cand)) {
        best = std::move(cand);
        changed = true;
        break;
      }
    }
    // 4. Smaller messages (halving, floor 1 MiB).
    for (std::size_t i = 0; i < best.transfers.size(); ++i) {
      if (best.transfers[i].bytes < 2 * util::kMiB) continue;
      Scenario cand = best;
      cand.transfers[i].bytes /= 2;
      if (reproduces(cand)) {
        best = std::move(cand);
        changed = true;
      }
    }
    // 5. Simpler policies: drop the host stage, then shrink the GPU-staged
    //    fan-out one step at a time.
    for (std::size_t i = 0; i < best.transfers.size(); ++i) {
      topo::PathPolicy& p = best.transfers[i].policy;
      if (p.include_host) {
        Scenario cand = best;
        cand.transfers[i].policy.include_host = false;
        if (reproduces(cand)) {
          best = std::move(cand);
          changed = true;
          continue;
        }
      }
      if (p.max_gpu_staged > 0) {
        Scenario cand = best;
        --cand.transfers[i].policy.max_gpu_staged;
        if (reproduces(cand)) {
          best = std::move(cand);
          changed = true;
        }
      }
    }
  }
  best.expected = want;
  return best;
}

}  // namespace mpath::fuzz
