#include "mpath/benchcore/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "mpath/util/rng.hpp"

namespace mpath::benchcore {

std::string_view to_string(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kStorm:
      return "storm";
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kHeavyTail:
      return "heavy-tail";
  }
  return "?";
}

std::vector<Arrival> make_arrivals(const topo::Topology& topo,
                                   const TrafficOptions& options) {
  if (options.transfers <= 0) {
    throw std::invalid_argument("make_arrivals: transfers must be > 0");
  }
  if (options.sizes.empty()) {
    throw std::invalid_argument("make_arrivals: sizes must be non-empty");
  }
  for (std::uint64_t s : options.sizes) {
    if (s == 0) throw std::invalid_argument("make_arrivals: zero size");
  }
  if (!(options.mean_interarrival_s >= 0.0)) {
    throw std::invalid_argument(
        "make_arrivals: mean_interarrival_s must be >= 0");
  }
  if (options.pattern == ArrivalPattern::kStorm && options.storm_width < 1) {
    throw std::invalid_argument("make_arrivals: storm_width must be >= 1");
  }
  if (options.pattern == ArrivalPattern::kHeavyTail &&
      !(options.pareto_alpha > 1.0)) {
    throw std::invalid_argument(
        "make_arrivals: pareto_alpha must be > 1 (finite mean)");
  }
  const std::vector<topo::DeviceId> gpus = topo.gpus();
  if (gpus.size() < 2) {
    throw std::invalid_argument("make_arrivals: need at least 2 GPUs");
  }

  util::Rng rng(options.seed);
  const double mean = options.mean_interarrival_s;
  // Pareto scale so the gap mean equals `mean`.
  const double pareto_xm =
      mean * (options.pareto_alpha - 1.0) / options.pareto_alpha;

  std::vector<Arrival> out;
  out.reserve(static_cast<std::size_t>(options.transfers));
  double clock = 0.0;
  std::size_t rr = 0;  // round-robin ordered-pair cursor
  const std::size_t npairs = gpus.size() * (gpus.size() - 1);
  for (int i = 0; i < options.transfers; ++i) {
    Arrival a;
    switch (options.pattern) {
      case ArrivalPattern::kStorm:
        // Bursts of storm_width same-instant arrivals, `mean` apart.
        a.t = static_cast<double>(i / options.storm_width) * mean;
        break;
      case ArrivalPattern::kPoisson:
        clock += -mean * std::log1p(-rng.uniform(0.0, 1.0));
        a.t = clock;
        break;
      case ArrivalPattern::kHeavyTail:
        clock += pareto_xm *
                 std::pow(1.0 - rng.uniform(0.0, 1.0),
                          -1.0 / options.pareto_alpha);
        a.t = clock;
        break;
    }
    if (options.random_pairs) {
      const auto si = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(gpus.size()) - 1));
      auto di = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(gpus.size()) - 2));
      if (di >= si) ++di;
      a.src = gpus[si];
      a.dst = gpus[di];
    } else {
      const std::size_t p = rr++ % npairs;
      const std::size_t si = p / (gpus.size() - 1);
      std::size_t di = p % (gpus.size() - 1);
      if (di >= si) ++di;
      a.src = gpus[si];
      a.dst = gpus[di];
    }
    a.bytes = options.sizes[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(options.sizes.size()) - 1))];
    out.push_back(a);
  }
  return out;
}

namespace {

struct RunState {
  int completed = 0;
  int failed = 0;
  double last_done_s = 0.0;
};

sim::Task<void> one_transfer(SimStack& stack, Arrival arrival, RunState& state,
                             gpusim::DeviceBuffer& src,
                             gpusim::DeviceBuffer& dst) {
  co_await stack.engine().delay(arrival.t);
  try {
    co_await stack.channel().transfer(dst, 0, src, 0, arrival.bytes);
    ++state.completed;
    state.last_done_s = std::max(state.last_done_s, stack.engine().now());
  } catch (const gpusim::TransferError&) {
    ++state.failed;
    // A failed transfer still pins down the makespan: the node was busy
    // with it until it gave up.
    state.last_done_s = std::max(state.last_done_s, stack.engine().now());
  }
}

}  // namespace

TrafficReport run_traffic(SimStack& stack, std::span<const Arrival> arrivals) {
  TrafficReport report;
  report.transfers = static_cast<int>(arrivals.size());
  if (arrivals.empty()) return report;

  RunState state;
  std::vector<std::unique_ptr<gpusim::DeviceBuffer>> buffers;
  buffers.reserve(arrivals.size() * 2);
  for (const Arrival& a : arrivals) {
    report.bytes_offered += a.bytes;
    auto& src = *buffers.emplace_back(
        std::make_unique<gpusim::DeviceBuffer>(a.src, a.bytes));
    auto& dst = *buffers.emplace_back(
        std::make_unique<gpusim::DeviceBuffer>(a.dst, a.bytes));
    stack.engine().spawn(one_transfer(stack, a, state, src, dst), "traffic");
  }
  stack.engine().run();

  report.completed = state.completed;
  report.failed = state.failed;
  const double t0 = arrivals.front().t;
  report.makespan_s = std::max(0.0, state.last_done_s - t0);
  if (report.makespan_s > 0.0) {
    report.transfers_per_s =
        static_cast<double>(report.completed) / report.makespan_s;
    report.aggregate_bandwidth =
        static_cast<double>(report.bytes_offered) / report.makespan_s;
  }
  return report;
}

}  // namespace mpath::benchcore
