#include "mpath/benchcore/omb.hpp"

#include <stdexcept>

namespace mpath::benchcore {

namespace {
constexpr int kAckTag = 9999;
constexpr std::size_t kAckBytes = 4;
}  // namespace

double measure_bw(mpisim::World& world, std::size_t bytes,
                  const P2POptions& opt) {
  if (opt.src_rank == opt.dst_rank || opt.window < 1 || opt.iterations < 1) {
    throw std::invalid_argument("measure_bw: bad options");
  }
  double elapsed = 0.0;
  world.run([&](mpisim::Communicator& comm) -> sim::Task<void> {
    if (comm.rank() == opt.src_rank) {
      gpusim::DeviceBuffer buf(comm.device(), bytes,
                               gpusim::Payload::Simulated);
      gpusim::DeviceBuffer ack(comm.device(), kAckBytes);
      double start = 0.0;
      for (int iter = 0; iter < opt.warmup + opt.iterations; ++iter) {
        if (iter == opt.warmup) start = comm.world().engine().now();
        std::vector<sim::Process> reqs;
        for (int w = 0; w < opt.window; ++w) {
          reqs.push_back(comm.isend(buf, 0, bytes, opt.dst_rank, w));
        }
        co_await comm.wait_all(std::move(reqs));
        co_await comm.recv(ack, 0, kAckBytes, opt.dst_rank, kAckTag);
      }
      elapsed = comm.world().engine().now() - start;
    } else if (comm.rank() == opt.dst_rank) {
      gpusim::DeviceBuffer buf(comm.device(), bytes,
                               gpusim::Payload::Simulated);
      gpusim::DeviceBuffer ack(comm.device(), kAckBytes);
      for (int iter = 0; iter < opt.warmup + opt.iterations; ++iter) {
        std::vector<sim::Process> reqs;
        for (int w = 0; w < opt.window; ++w) {
          reqs.push_back(comm.irecv(buf, 0, bytes, opt.src_rank, w));
        }
        co_await comm.wait_all(std::move(reqs));
        co_await comm.send(ack, 0, kAckBytes, opt.src_rank, kAckTag);
      }
    }
    co_return;
  });
  const double total_bytes = static_cast<double>(bytes) * opt.window *
                             opt.iterations;
  return total_bytes / elapsed;
}

double measure_bibw(mpisim::World& world, std::size_t bytes,
                    const P2POptions& opt) {
  if (opt.src_rank == opt.dst_rank || opt.window < 1 || opt.iterations < 1) {
    throw std::invalid_argument("measure_bibw: bad options");
  }
  double elapsed = 0.0;
  world.run([&](mpisim::Communicator& comm) -> sim::Task<void> {
    const bool is_a = comm.rank() == opt.src_rank;
    const bool is_b = comm.rank() == opt.dst_rank;
    if (!is_a && !is_b) co_return;
    const int peer = is_a ? opt.dst_rank : opt.src_rank;
    gpusim::DeviceBuffer sendbuf(comm.device(), bytes,
                                 gpusim::Payload::Simulated);
    gpusim::DeviceBuffer recvbuf(comm.device(), bytes,
                                 gpusim::Payload::Simulated);
    gpusim::DeviceBuffer ack(comm.device(), kAckBytes);
    double start = 0.0;
    for (int iter = 0; iter < opt.warmup + opt.iterations; ++iter) {
      if (iter == opt.warmup) start = comm.world().engine().now();
      std::vector<sim::Process> reqs;
      for (int w = 0; w < opt.window; ++w) {
        reqs.push_back(comm.irecv(recvbuf, 0, bytes, peer, opt.window + w));
      }
      for (int w = 0; w < opt.window; ++w) {
        reqs.push_back(comm.isend(sendbuf, 0, bytes, peer, opt.window + w));
      }
      co_await comm.wait_all(std::move(reqs));
      // Mutual ack closes the iteration on both sides.
      std::vector<sim::Process> handshake;
      handshake.push_back(comm.isend(ack, 0, kAckBytes, peer, kAckTag));
      handshake.push_back(comm.irecv(ack, 0, kAckBytes, peer, kAckTag));
      co_await comm.wait_all(std::move(handshake));
    }
    if (is_a) elapsed = comm.world().engine().now() - start;
    co_return;
  });
  const double total_bytes = 2.0 * static_cast<double>(bytes) * opt.window *
                             opt.iterations;
  return total_bytes / elapsed;
}

double measure_collective_latency(mpisim::World& world, CollectiveOp op,
                                  const CollectiveOptions& opt) {
  if (opt.iterations < 1) {
    throw std::invalid_argument("measure_collective_latency: bad options");
  }
  double elapsed = 0.0;
  world.run([&](mpisim::Communicator& comm) -> sim::Task<void> {
    double start = 0.0;
    for (int iter = 0; iter < opt.warmup + opt.iterations; ++iter) {
      co_await comm.barrier();
      if (iter == opt.warmup) start = comm.world().engine().now();
      co_await op(comm);
    }
    co_await comm.barrier();
    if (comm.rank() == 0) {
      elapsed = comm.world().engine().now() - start;
    }
  });
  return elapsed / opt.iterations;
}

}  // namespace mpath::benchcore
