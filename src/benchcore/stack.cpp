#include "mpath/benchcore/stack.hpp"

namespace mpath::benchcore {

SimStack::SimStack(topo::System system, StackOptions options)
    : system_(std::make_unique<topo::System>(std::move(system))),
      engine_(std::make_unique<sim::Engine>()),
      network_(std::make_unique<sim::FluidNetwork>(*engine_)),
      runtime_(std::make_unique<gpusim::GpuRuntime>(*system_, *engine_,
                                                    *network_, options.seed)),
      pipeline_(std::make_unique<pipeline::PipelineEngine>(
          *runtime_, options.staging_buffers_per_device,
          gpusim::Payload::Simulated)) {}

void SimStack::finish(std::unique_ptr<gpusim::DataChannel> channel,
                      const StackOptions& options) {
  channel_ = std::move(channel);
  if (options.collective_graphs) {
    if (auto* mdc = dynamic_cast<pipeline::ModelDrivenChannel*>(
            channel_.get())) {
      chain_ = std::make_unique<pipeline::ChainController>(*mdc,
                                                           options.chain);
    }
  }
  world_ = std::make_unique<mpisim::World>(*runtime_, *channel_,
                                           options.nranks, options.world);
  if (chain_ != nullptr) world_->set_chain_controller(chain_.get());
}

SimStack SimStack::direct(topo::System system, StackOptions options) {
  SimStack stack(std::move(system), options);
  stack.finish(std::make_unique<pipeline::SinglePathChannel>(*stack.pipeline_),
               options);
  return stack;
}

SimStack SimStack::model_driven(topo::System system,
                                model::PathConfigurator& configurator,
                                topo::PathPolicy policy,
                                StackOptions options) {
  SimStack stack(std::move(system), options);
  stack.finish(std::make_unique<pipeline::ModelDrivenChannel>(
                   *stack.pipeline_, configurator, policy, options.model),
               options);
  return stack;
}

SimStack SimStack::model_driven_scheduled(topo::System system,
                                          model::PathConfigurator& configurator,
                                          topo::PathPolicy policy,
                                          pipeline::SchedulerOptions sched,
                                          StackOptions options) {
  SimStack stack(std::move(system), options);
  stack.scheduler_ = std::make_unique<pipeline::TransferScheduler>(
      *stack.pipeline_, configurator, sched);
  stack.finish(std::make_unique<pipeline::ModelDrivenChannel>(
                   *stack.pipeline_, *stack.scheduler_, configurator, policy,
                   options.model),
               options);
  return stack;
}

SimStack SimStack::static_plan(topo::System system, pipeline::StaticPlan plan,
                               StackOptions options) {
  SimStack stack(std::move(system), options);
  stack.finish(std::make_unique<pipeline::StaticPlanChannel>(
                   *stack.pipeline_, std::move(plan)),
               options);
  return stack;
}

}  // namespace mpath::benchcore
