#include "mpath/benchcore/metrics.hpp"

#include "mpath/util/stats.hpp"

namespace mpath::benchcore {

double predicted_bandwidth(model::PathConfigurator& configurator,
                           const topo::Topology& topo, topo::DeviceId src,
                           topo::DeviceId dst, std::size_t bytes,
                           const topo::PathPolicy& policy) {
  const auto paths = topo::enumerate_paths(topo, src, dst, policy);
  return configurator.configure(src, dst, bytes, paths).predicted_bandwidth();
}

double mean_relative_error(
    std::span<const std::pair<double, double>> predicted_vs_observed) {
  if (predicted_vs_observed.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [predicted, observed] : predicted_vs_observed) {
    sum += util::relative_error(predicted, observed);
  }
  return sum / static_cast<double>(predicted_vs_observed.size());
}

DegradedRunMetrics degraded_run_metrics(const pipeline::RecoveryStats& stats,
                                        std::uint64_t bytes_requested,
                                        std::uint64_t bytes_delivered,
                                        double elapsed_s) {
  DegradedRunMetrics m;
  m.bytes_requested = bytes_requested;
  m.bytes_delivered = bytes_delivered;
  m.elapsed_s = elapsed_s;
  m.delivered_bandwidth =
      elapsed_s > 0.0 ? static_cast<double>(bytes_delivered) / elapsed_s : 0.0;
  m.path_timeouts = stats.path_timeouts;
  m.replans = stats.replans;
  m.transfers_recovered = stats.transfers_recovered;
  m.transfers_failed = stats.transfers_failed;
  m.recovery_time_s = stats.recovery_time_s;
  m.completed = stats.transfers_failed == 0;
  return m;
}

}  // namespace mpath::benchcore
