#include "mpath/benchcore/metrics.hpp"

#include "mpath/util/stats.hpp"

namespace mpath::benchcore {

double predicted_bandwidth(model::PathConfigurator& configurator,
                           const topo::Topology& topo, topo::DeviceId src,
                           topo::DeviceId dst, std::size_t bytes,
                           const topo::PathPolicy& policy) {
  const auto paths = topo::enumerate_paths(topo, src, dst, policy);
  return configurator.configure(src, dst, bytes, paths).predicted_bandwidth();
}

double mean_relative_error(
    std::span<const std::pair<double, double>> predicted_vs_observed) {
  if (predicted_vs_observed.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [predicted, observed] : predicted_vs_observed) {
    sum += util::relative_error(predicted, observed);
  }
  return sum / static_cast<double>(predicted_vs_observed.size());
}

}  // namespace mpath::benchcore
