#include "mpath/tuning/static_tuner.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "mpath/benchcore/omb.hpp"
#include "mpath/benchcore/stack.hpp"
#include "mpath/util/fsio.hpp"
#include "mpath/util/log.hpp"

namespace mpath::tuning {

namespace {
/// Enumerate all compositions (f_1, ..., f_n) with sum <= `remaining` on
/// the grid, appending each to `out`. Plain recursion — no std::function.
void enumerate_compositions(std::vector<int>& current, std::size_t idx,
                            int remaining,
                            std::vector<std::vector<int>>& out) {
  if (idx == current.size()) {
    out.push_back(current);
    return;
  }
  for (int v = 0; v <= remaining; ++v) {
    current[idx] = v;
    enumerate_compositions(current, idx + 1, remaining - v, out);
  }
}
}  // namespace

StaticTuner::StaticTuner(topo::System system, topo::PathPolicy policy,
                         StaticTunerOptions options)
    : system_(std::move(system)), policy_(policy), options_(std::move(options)) {
  const auto gpus = system_.topology.gpus();
  if (gpus.size() < 2) {
    throw std::invalid_argument("StaticTuner: need at least two GPUs");
  }
  paths_ = topo::enumerate_paths(system_.topology, gpus[0], gpus[1], policy_);
}

double StaticTuner::measure(const pipeline::StaticPlan& plan,
                            std::size_t bytes) const {
  benchcore::StackOptions stack_opt;
  stack_opt.seed = options_.seed;
  auto stack = benchcore::SimStack::static_plan(system_, plan, stack_opt);
  benchcore::P2POptions p2p;
  p2p.window = options_.window;
  p2p.iterations = options_.iterations;
  p2p.warmup = options_.warmup;
  return options_.metric == TuneMetric::Unidirectional
             ? benchcore::measure_bw(stack.world(), bytes, p2p)
             : benchcore::measure_bibw(stack.world(), bytes, p2p);
}

StaticTuneResult StaticTuner::tune(std::size_t bytes) {
  StaticTuneResult best;
  if (load_cached(bytes, best)) {
    best.from_cache = true;
    return best;
  }

  const std::size_t p = paths_.size();
  const int steps = std::max(1, static_cast<int>(
                                    std::lround(1.0 / options_.fraction_step)));
  // Enumerate all compositions (f_1, ..., f_{p-1}) of the staged shares on
  // the grid; the direct path takes the remainder (and must keep > 0).
  std::vector<std::vector<int>> compositions;
  std::vector<int> current(p - 1, 0);
  // Direct keeps at least one grid step.
  enumerate_compositions(current, 0, steps - 1, compositions);

  for (const auto& comp : compositions) {
    int staged_total = 0;
    for (int v : comp) staged_total += v;
    const int direct_share = steps - staged_total;
    const bool any_staged = staged_total > 0;
    for (int k : options_.chunk_grid) {
      pipeline::StaticPlan plan;
      plan.paths = paths_;
      plan.fractions.resize(p);
      plan.chunks.assign(p, 1);
      plan.fractions[0] =
          static_cast<double>(direct_share) / static_cast<double>(steps);
      for (std::size_t i = 1; i < p; ++i) {
        plan.fractions[i] = static_cast<double>(comp[i - 1]) /
                            static_cast<double>(steps);
        plan.chunks[i] = k;
      }
      const double bw = measure(plan, bytes);
      ++best.evaluated;
      if (bw > best.bandwidth_bps) {
        best.bandwidth_bps = bw;
        best.plan = std::move(plan);
      }
      // All-direct plans do not depend on k; skip redundant chunk points.
      if (!any_staged) break;
    }
  }
  MPATH_INFO << "StaticTuner(" << system_.topology.name() << ", "
             << policy_.label() << ", " << bytes << "B): best "
             << best.bandwidth_bps / 1e9 << " GB/s over " << best.evaluated
             << " candidates";
  store_cached(bytes, best);
  return best;
}

std::string StaticTuner::cache_path(std::size_t bytes) const {
  std::ostringstream name;
  name << "static_" << system_.topology.name() << "_" << policy_.label()
       << "_"
       << (options_.metric == TuneMetric::Unidirectional ? "bw" : "bibw")
       << "_w" << options_.window << "_" << bytes << ".csv";
  return options_.cache_dir + "/" + name.str();
}

bool StaticTuner::load_cached(std::size_t bytes, StaticTuneResult& out) const {
  if (options_.cache_dir.empty()) return false;
  std::ifstream in(cache_path(bytes));
  if (!in) return false;
  StaticTuneResult result;
  result.plan.paths = paths_;
  std::string line;
  if (!std::getline(in, line)) return false;
  std::istringstream ss(line);
  std::string cell;
  if (!std::getline(ss, cell, ',')) return false;
  result.bandwidth_bps = std::stod(cell);
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (!std::getline(ss, cell, ',')) return false;
    result.plan.fractions.push_back(std::stod(cell));
  }
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (!std::getline(ss, cell, ',')) return false;
    result.plan.chunks.push_back(std::stoi(cell));
  }
  out = std::move(result);
  return true;
}

void StaticTuner::store_cached(std::size_t bytes,
                               const StaticTuneResult& result) const {
  if (options_.cache_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(options_.cache_dir, ec);
  std::ostringstream out;
  out.precision(17);  // full double round-trip
  out << result.bandwidth_bps;
  for (double f : result.plan.fractions) out << "," << f;
  for (int k : result.plan.chunks) out << "," << k;
  out << "\n";
  // Atomic publication: a reader (or a parallel sweep worker tuning the
  // same point) either sees the complete line or no file at all.
  try {
    util::write_file_atomic(cache_path(bytes), out.str());
  } catch (const std::exception& e) {
    MPATH_WARN << "StaticTuner: cannot write cache " << cache_path(bytes)
               << ": " << e.what();
  }
}

}  // namespace mpath::tuning
