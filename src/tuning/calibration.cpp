#include "mpath/tuning/calibration.hpp"

#include <utility>

#include "mpath/gpusim/runtime.hpp"
#include "mpath/pipeline/channels.hpp"
#include "mpath/pipeline/engine.hpp"
#include "mpath/sim/fluid.hpp"
#include "mpath/transport/fabric.hpp"
#include "mpath/util/stats.hpp"

namespace mpath::tuning {

namespace {

/// Enumerate the ordered device pairs the model may ever need: every GPU
/// pair, plus GPU<->host both ways for every GPU/host combination.
std::vector<std::pair<topo::DeviceId, topo::DeviceId>> routes_to_measure(
    const topo::Topology& topo) {
  std::vector<std::pair<topo::DeviceId, topo::DeviceId>> out;
  const auto gpus = topo.gpus();
  for (auto a : gpus) {
    for (auto b : gpus) {
      if (a != b) out.emplace_back(a, b);
    }
  }
  for (auto g : gpus) {
    for (auto h : topo.hosts()) {
      // Skip unreachable host-ish transit devices (e.g. an NVSwitch node
      // modeled as Host without a memory channel is still routable; a
      // truly disconnected one throws and is skipped).
      try {
        (void)topo.route(g, h);
        (void)topo.route(h, g);
      } catch (const std::runtime_error&) {
        continue;
      }
      out.emplace_back(g, h);
      out.emplace_back(h, g);
    }
  }
  return out;
}

struct Probe {
  sim::Engine engine;
  sim::FluidNetwork network{engine};
  gpusim::GpuRuntime runtime;
  Probe(const topo::System& system, std::uint64_t seed)
      : runtime(system, engine, network, seed) {}
};

/// Time one isolated copy a->b of `bytes` (median over `iters` runs).
double time_copy(Probe& probe, topo::DeviceId a, topo::DeviceId b,
                 std::size_t bytes, int iters) {
  std::vector<double> samples;
  for (int i = 0; i < iters; ++i) {
    gpusim::DeviceBuffer src(a, bytes, gpusim::Payload::Simulated);
    gpusim::DeviceBuffer dst(b, bytes, gpusim::Payload::Simulated);
    const auto stream = probe.runtime.create_stream(a);
    const double start = probe.engine.now();
    double finish = start;
    probe.runtime.memcpy_async(dst, 0, src, 0, bytes, stream);
    probe.engine.spawn(
        [](gpusim::GpuRuntime& rt, gpusim::StreamId s,
           double& out) -> sim::Task<void> {
          co_await rt.synchronize(s);
          out = rt.engine().now();
        }(probe.runtime, stream, finish),
        "calibration-copy");
    probe.engine.run();
    samples.push_back(finish - start);
  }
  return util::median(std::move(samples));
}

/// Time one staged transfer with k pipeline chunks through the real
/// engine. Used to extract the per-chunk overhead: T(k) is affine in k
/// (Eq. 13), so c = (T(k2) - T(k1)) / (k2 - k1) measures the full
/// per-chunk software cost (issue, events, staging sync).
double time_staged(Probe& probe, topo::DeviceId src, topo::DeviceId stage,
                   topo::DeviceId dst, topo::PathKind kind, std::size_t bytes,
                   int chunks) {
  pipeline::PipelineEngine engine(probe.runtime, 4,
                                  gpusim::Payload::Simulated);
  gpusim::DeviceBuffer s(src, bytes, gpusim::Payload::Simulated);
  gpusim::DeviceBuffer d(dst, bytes, gpusim::Payload::Simulated);
  const double start = probe.engine.now();
  double finish = start;
  probe.engine.spawn(
      [](pipeline::PipelineEngine& pe, gpusim::DeviceBuffer& dd,
         const gpusim::DeviceBuffer& ss, topo::PathKind k, topo::DeviceId st,
         int kc, double& out) -> sim::Task<void> {
        pipeline::ExecPlan plan{
            pipeline::ExecPath{topo::PathPlan{k, st}, ss.size(), kc}};
        co_await pe.execute(dd, 0, ss, 0, std::move(plan));
        out = pe.runtime().engine().now();
      }(engine, d, s, kind, stage, chunks, finish),
      "calibration-staged");
  probe.engine.run();
  return finish - start;
}

/// One rendezvous message through the full transport stack; with the raw
/// copy time of the same route subtracted this yields the per-message
/// protocol prefix (handshake, IPC lookup, issue) that every transfer
/// pays before data flows.
double time_transport_message(Probe& probe, topo::DeviceId a,
                              topo::DeviceId b, std::size_t bytes) {
  pipeline::PipelineEngine engine(probe.runtime, 4,
                                  gpusim::Payload::Simulated);
  pipeline::SinglePathChannel channel(engine);
  transport::Fabric fabric(probe.runtime, channel);
  fabric.add_worker(0, a);
  fabric.add_worker(1, b);
  gpusim::DeviceBuffer src(a, bytes, gpusim::Payload::Simulated);
  gpusim::DeviceBuffer dst(b, bytes, gpusim::Payload::Simulated);
  double best = 0.0;
  // Two rounds: the first opens the IPC handle, the second is steady state.
  for (int round = 0; round < 2; ++round) {
    const double start = probe.engine.now();
    double finish = start;
    probe.engine.spawn(fabric.worker(0).send(1, src, 0, bytes, round),
                       "calibration-send");
    probe.engine.spawn(
        [](transport::Worker& w, gpusim::DeviceBuffer& d, std::size_t n,
           int tag, gpusim::GpuRuntime& rt, double& out) -> sim::Task<void> {
          co_await w.recv(0, d, 0, n, tag);
          out = rt.engine().now();
        }(fabric.worker(1), dst, bytes, round, probe.runtime, finish),
        "calibration-recv");
    probe.engine.run();
    best = finish - start;
  }
  return best;
}

/// Event ping-pong: measures the per-chunk synchronization cost between a
/// producer and a consumer stream (record + cross-stream wait).
double time_sync_cycle(Probe& probe, topo::DeviceId a, topo::DeviceId b,
                       int cycles) {
  const auto sa = probe.runtime.create_stream(a);
  const auto sb = probe.runtime.create_stream(b);
  const double start = probe.engine.now();
  double finish = start;
  for (int i = 0; i < cycles; ++i) {
    const auto ev = probe.runtime.create_event();
    probe.runtime.record_event(ev, sa);
    probe.runtime.wait_event(sb, ev);
  }
  probe.engine.spawn(
      [](gpusim::GpuRuntime& rt, gpusim::StreamId s,
         double& out) -> sim::Task<void> {
        co_await rt.synchronize(s);
        out = rt.engine().now();
      }(probe.runtime, sb, finish),
      "calibration-sync");
  probe.engine.run();
  return (finish - start) / cycles;
}

}  // namespace

model::ModelRegistry calibrate(const topo::System& system,
                               const CalibrationOptions& options) {
  model::ModelRegistry reg(system.topology.name());
  Probe probe(system, options.seed);

  for (const auto& [a, b] : routes_to_measure(system.topology)) {
    model::HockneyFitter fitter;
    for (std::size_t bytes : options.sizes) {
      fitter.add_sample(
          static_cast<double>(bytes),
          time_copy(probe, a, b, bytes, options.iterations));
    }
    reg.set_route_params(a, b, fitter.fit());
  }

  // Epsilon: extracted from the pipeline engine itself. T(k) is affine in
  // the chunk count (Eq. 13); the slope is the full per-chunk overhead c,
  // and in the equal-bandwidth staging case c = epsilon + alpha'
  // (Case 2 of Eq. 13), so epsilon = c - alpha' of the second hop.
  const auto gpus = system.topology.gpus();
  double sync = 0.0;
  if (gpus.size() >= 2) {
    sync = time_sync_cycle(probe, gpus[0], gpus[1], 64);
  }
  auto fitted_epsilon = [&](topo::PathKind kind, topo::DeviceId stage,
                            double fallback) {
    constexpr std::size_t kProbeBytes = 16u << 20;
    constexpr int kLo = 8, kHi = 32;
    const double t_lo = time_staged(probe, gpus[0], stage, gpus[1], kind,
                                    kProbeBytes, kLo);
    const double t_hi = time_staged(probe, gpus[0], stage, gpus[1], kind,
                                    kProbeBytes, kHi);
    const double per_chunk = (t_hi - t_lo) / (kHi - kLo);
    const double alpha_second = reg.route_params(stage, gpus[1]).alpha;
    const double eps = per_chunk - alpha_second;
    return eps > 0.5e-6 ? eps : fallback;
  };
  if (gpus.size() >= 3) {
    reg.set_epsilon(topo::PathKind::GpuStaged,
                    fitted_epsilon(topo::PathKind::GpuStaged, gpus[2],
                                   sync + system.costs.stage_sync_s));
  } else {
    reg.set_epsilon(topo::PathKind::GpuStaged,
                    sync + system.costs.stage_sync_s);
  }
  bool host_reachable = false;
  topo::DeviceId host = topo::kInvalidDevice;
  if (!system.topology.hosts().empty() && gpus.size() >= 2) {
    host = system.topology.nearest_host(gpus[0]);
    host_reachable = reg.has_route_params(gpus[0], host) &&
                     reg.has_route_params(host, gpus[1]);
  }
  if (host_reachable) {
    reg.set_epsilon(topo::PathKind::HostStaged,
                    fitted_epsilon(topo::PathKind::HostStaged, host,
                                   sync + system.costs.host_stage_sync_s));
  } else {
    reg.set_epsilon(topo::PathKind::HostStaged,
                    sync + system.costs.host_stage_sync_s);
  }
  // Host-side cost of kicking off one more path: roughly the ops issued
  // before the next path's first chunk can start.
  reg.set_issue_alpha(3.0 * system.costs.op_launch_s);

  // Per-message protocol prefix: a steady-state rendezvous message minus
  // the raw link time of the same route.
  if (gpus.size() >= 2) {
    constexpr std::size_t kProbeBytes = 256u << 10;
    const double through_stack =
        time_transport_message(probe, gpus[0], gpus[1], kProbeBytes);
    const double raw =
        reg.route_params(gpus[0], gpus[1]).time(kProbeBytes);
    const double prefix = through_stack - raw;
    reg.set_protocol_alpha(prefix > 0.0 ? prefix : 0.0);
  }

  // Contention-aware extension: measure each staged path's pipelined
  // end-to-end slope. Two sizes at a fixed chunk count give
  // Omega_eff = (T(n2) - T(n1)) / (n2 - n1), which reflects any resource
  // both hops share.
  if (options.contention_aware && gpus.size() >= 2) {
    constexpr std::size_t kN1 = 32u << 20;
    constexpr std::size_t kN2 = 128u << 20;
    constexpr int kChunks = 16;
    for (auto src : gpus) {
      for (auto dst : gpus) {
        if (src == dst) continue;
        const auto paths = topo::enumerate_paths(
            system.topology, src, dst,
            topo::PathPolicy::three_gpus_with_host());
        for (const auto& plan : paths) {
          if (plan.kind == topo::PathKind::Direct) continue;
          const double t1 = time_staged(probe, src, plan.stage, dst,
                                        plan.kind, kN1, kChunks);
          const double t2 = time_staged(probe, src, plan.stage, dst,
                                        plan.kind, kN2, kChunks);
          const double measured_slope =
              (t2 - t1) / static_cast<double>(kN2 - kN1);
          // Slope the hop composition predicts at the same fixed chunk
          // count (Eq. 13): 1/beta + 1/(k*beta') with the roles set by the
          // bottleneck case.
          const auto& first = reg.route_params(src, plan.stage);
          const auto& second = reg.route_params(plan.stage, dst);
          const double expected_slope =
              first.beta < second.beta
                  ? 1.0 / first.beta + 1.0 / (kChunks * second.beta)
                  : 1.0 / (kChunks * first.beta) + 1.0 / second.beta;
          const double factor = measured_slope / expected_slope;
          if (factor > 1.0) {
            reg.set_contention_factor(src, dst, plan, factor);
          }
        }
      }
    }
  }
  return reg;
}

model::ModelRegistry registry_from_topology(const topo::System& system) {
  model::ModelRegistry reg(system.topology.name());
  for (const auto& [a, b] : routes_to_measure(system.topology)) {
    const auto& route = system.topology.route(a, b);
    model::LinkParams lp;
    lp.beta = system.topology.route_capacity(route);
    lp.alpha = system.topology.route_latency(route) + system.costs.op_launch_s;
    reg.set_route_params(a, b, lp);
  }
  const double sync = system.costs.event_record_s + system.costs.event_wait_s;
  reg.set_epsilon(topo::PathKind::GpuStaged,
                  sync + system.costs.stage_sync_s);
  reg.set_epsilon(topo::PathKind::HostStaged,
                  sync + system.costs.host_stage_sync_s);
  reg.set_issue_alpha(3.0 * system.costs.op_launch_s);
  return reg;
}

}  // namespace mpath::tuning
