#include "mpath/topo/binding.hpp"

namespace mpath::topo {

NetworkBinding::NetworkBinding(const Topology& topo, sim::FluidNetwork& net)
    : topo_(&topo), net_(&net) {
  edge_to_link_.reserve(topo.edges().size());
  for (const Edge& e : topo.edges()) {
    edge_to_link_.push_back(net.add_link(
        sim::LinkSpec{e.name, e.capacity_bps, e.latency_s}));
  }
}

sim::LinkId NetworkBinding::link_for_edge(EdgeId edge) const {
  return edge_to_link_.at(edge);
}

sim::Route NetworkBinding::links_for_route(
    std::span<const EdgeId> route) const {
  sim::Route out;
  out.reserve(route.size());
  for (EdgeId e : route) {
    out.push_back(edge_to_link_.at(e));
  }
  return out;
}

sim::Route NetworkBinding::route_links(DeviceId from, DeviceId to) const {
  return links_for_route(topo_->route(from, to));
}

}  // namespace mpath::topo
