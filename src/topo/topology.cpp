#include "mpath/topo/topology.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <queue>
#include <stdexcept>

namespace mpath::topo {

Topology::Topology(const Topology& other)
    : name_(other.name_),
      devices_(other.devices_),
      edges_(other.edges_),
      adjacency_(other.adjacency_),
      memory_channels_(other.memory_channels_),
      route_mutex_(std::make_unique<std::shared_mutex>()) {
  std::shared_lock lock(*other.route_mutex_);
  route_cache_ = other.route_cache_;
}

Topology& Topology::operator=(const Topology& other) {
  if (this != &other) {
    Topology copy(other);
    *this = std::move(copy);
  }
  return *this;
}

std::string_view to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::NVLink2: return "NVLink2";
    case LinkKind::NVLink3: return "NVLink3";
    case LinkKind::NVLink4: return "NVLink4";
    case LinkKind::PCIe3: return "PCIe3";
    case LinkKind::PCIe4: return "PCIe4";
    case LinkKind::PCIe5: return "PCIe5";
    case LinkKind::UPI: return "UPI";
    case LinkKind::XGMI: return "xGMI";
    case LinkKind::MemChan: return "MemChan";
    case LinkKind::NVSwitch: return "NVSwitch";
  }
  return "?";
}

std::string_view to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Gpu: return "GPU";
    case DeviceKind::Host: return "Host";
  }
  return "?";
}

DeviceId Topology::add_device(DeviceKind kind, int numa_node,
                              std::string name) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(DeviceInfo{id, kind, numa_node, std::move(name)});
  adjacency_.emplace_back();
  {
    std::unique_lock lock(*route_mutex_);
    route_cache_.clear();
  }
  return id;
}

EdgeId Topology::connect(DeviceId from, DeviceId to, LinkKind kind,
                         double capacity_bps, double latency_s) {
  if (from >= devices_.size() || to >= devices_.size() || from == to) {
    throw std::invalid_argument("Topology::connect: bad endpoints");
  }
  if (capacity_bps <= 0.0 || latency_s < 0.0) {
    throw std::invalid_argument("Topology::connect: bad link parameters");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  std::string name = devices_[from].name + "->" + devices_[to].name + ":" +
                     std::string(to_string(kind));
  edges_.push_back(
      Edge{id, from, to, kind, capacity_bps, latency_s, std::move(name), false});
  adjacency_[from].push_back(id);
  {
    std::unique_lock lock(*route_mutex_);
    route_cache_.clear();
  }
  return id;
}

std::pair<EdgeId, EdgeId> Topology::connect_duplex(DeviceId a, DeviceId b,
                                                   LinkKind kind,
                                                   double capacity_bps,
                                                   double latency_s) {
  EdgeId ab = connect(a, b, kind, capacity_bps, latency_s);
  EdgeId ba = connect(b, a, kind, capacity_bps, latency_s);
  return {ab, ba};
}

EdgeId Topology::add_memory_channel(DeviceId host, double capacity_bps,
                                    double latency_s) {
  if (host >= devices_.size() || devices_[host].kind != DeviceKind::Host) {
    throw std::invalid_argument(
        "Topology::add_memory_channel: not a Host device");
  }
  if (memory_channels_.count(host) != 0) {
    throw std::invalid_argument(
        "Topology::add_memory_channel: host already has a channel");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{id, host, host, LinkKind::MemChan, capacity_bps,
                        latency_s, devices_[host].name + ":MemChan", true});
  memory_channels_.emplace(host, id);
  {
    std::unique_lock lock(*route_mutex_);
    route_cache_.clear();
  }
  return id;
}

const DeviceInfo& Topology::device(DeviceId id) const {
  if (id >= devices_.size()) throw std::out_of_range("bad DeviceId");
  return devices_[id];
}

std::vector<DeviceId> Topology::gpus() const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Gpu) out.push_back(d.id);
  }
  return out;
}

std::vector<DeviceId> Topology::hosts() const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host) out.push_back(d.id);
  }
  return out;
}

DeviceId Topology::host_for_numa(int numa_node) const {
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host && d.numa_node == numa_node) return d.id;
  }
  throw std::runtime_error("Topology: no host in NUMA node " +
                           std::to_string(numa_node));
}

DeviceId Topology::nearest_host(DeviceId dev) const {
  const auto& info = device(dev);
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host && d.numa_node == info.numa_node) {
      return d.id;
    }
  }
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host) return d.id;
  }
  throw std::runtime_error("Topology: no host device");
}

std::optional<EdgeId> Topology::direct_edge(DeviceId a, DeviceId b) const {
  std::optional<EdgeId> best;
  for (EdgeId e : adjacency_.at(a)) {
    if (edges_[e].to != b) continue;
    if (!best || edges_[e].capacity_bps > edges_[*best].capacity_bps) {
      best = e;
    }
  }
  return best;
}

const std::vector<EdgeId>& Topology::route(DeviceId from, DeviceId to) const {
  const auto key = std::make_pair(from, to);
  {
    std::shared_lock lock(*route_mutex_);
    if (auto it = route_cache_.find(key); it != route_cache_.end()) {
      return it->second;
    }
  }
  // Cold lookup: compute outside any lock (Dijkstra is the expensive part),
  // then insert. A racing thread may have filled the slot meanwhile;
  // try_emplace keeps the first value so both callers observe one route.
  std::vector<EdgeId> computed = compute_route(from, to);
  std::unique_lock lock(*route_mutex_);
  auto [it, inserted] = route_cache_.try_emplace(key, std::move(computed));
  return it->second;
}

void Topology::warm_route_cache() const {
  for (const DeviceInfo& a : devices_) {
    for (const DeviceInfo& b : devices_) {
      try {
        (void)route(a.id, b.id);
      } catch (const std::runtime_error&) {
        // Unreachable pairs simply stay uncached.
      }
    }
  }
}

std::vector<EdgeId> Topology::compute_route(DeviceId from, DeviceId to) const {
  if (from >= devices_.size() || to >= devices_.size()) {
    throw std::out_of_range("Topology::route: bad DeviceId");
  }
  std::vector<EdgeId> path;
  if (from != to) {
    // Dijkstra over non-memory-channel edges. Edge weight approximates the
    // cost of pushing a reference-sized transfer (1 MiB) through the edge,
    // so higher-bandwidth links are preferred and latency breaks ties.
    //
    // A GPU cannot transparently forward traffic: data only transits a GPU
    // when the hardware routes it (AMD xGMI rings). NVLink/PCIe forwarding
    // requires explicit staging, which is modeled as separate hop transfers
    // by the pipeline engine, not as routing. Whether an edge out of a
    // transit GPU is admissible therefore depends on HOW the data arrived
    // there (on xGMI or not) — predecessor-dependent admissibility breaks
    // Dijkstra's subpath-optimality assumption, so the search state is
    // (device, arrived-via-xGMI) rather than the device alone. Otherwise a
    // cheaper non-xGMI arrival at a ring GPU would mask the xGMI arrival
    // that the onward ring hop needs, yielding spurious "no route" or a
    // worse detour.
    constexpr double kRefBytes = 1.0 * (1 << 20);
    const double inf = std::numeric_limits<double>::infinity();
    const std::size_t n = devices_.size();
    const auto state_of = [n](DeviceId dev, bool via_xgmi) {
      return static_cast<std::size_t>(dev) + (via_xgmi ? n : 0);
    };
    std::vector<double> dist(2 * n, inf);
    std::vector<EdgeId> via(2 * n, 0);
    std::vector<std::size_t> prev_state(2 * n, 0);
    using Item = std::pair<double, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    const std::size_t start = state_of(from, false);
    dist[start] = 0.0;
    heap.emplace(0.0, start);
    std::size_t goal = start;  // best arrival state at `to`, once found
    bool found = false;
    while (!heap.empty()) {
      const auto [d, s] = heap.top();
      heap.pop();
      if (d > dist[s]) continue;
      const DeviceId u = static_cast<DeviceId>(s < n ? s : s - n);
      const bool arrived_xgmi = s >= n;
      if (u == to) {
        // First popped arrival state is the global optimum; ties break on
        // the lower state index (non-xGMI first) for determinism.
        goal = s;
        found = true;
        break;
      }
      const bool gpu_transit = u != from && devices_[u].kind == DeviceKind::Gpu;
      for (EdgeId e : adjacency_[u]) {
        const Edge& edge = edges_[e];
        if (gpu_transit && (edge.kind != LinkKind::XGMI || !arrived_xgmi)) {
          continue;
        }
        const double w = edge.latency_s + kRefBytes / edge.capacity_bps;
        const std::size_t t = state_of(edge.to, edge.kind == LinkKind::XGMI);
        if (dist[s] + w < dist[t]) {
          dist[t] = dist[s] + w;
          via[t] = e;
          prev_state[t] = s;
          heap.emplace(dist[t], t);
        }
      }
    }
    if (!found) {
      throw std::runtime_error("Topology: no route " + devices_[from].name +
                               " -> " + devices_[to].name);
    }
    for (std::size_t s = goal; s != start; s = prev_state[s]) {
      path.push_back(via[s]);
    }
    std::reverse(path.begin(), path.end());
  }
  // DMA into or out of host DRAM consumes the host's memory channel.
  if (auto it = memory_channels_.find(from); it != memory_channels_.end()) {
    path.insert(path.begin(), it->second);
  }
  if (auto it = memory_channels_.find(to); it != memory_channels_.end()) {
    path.push_back(it->second);
  }
  return path;
}

double Topology::route_capacity(std::span<const EdgeId> route) const {
  double cap = std::numeric_limits<double>::infinity();
  for (EdgeId e : route) {
    cap = std::min(cap, edges_.at(e).capacity_bps);
  }
  return cap;
}

double Topology::route_latency(std::span<const EdgeId> route) const {
  double lat = 0.0;
  for (EdgeId e : route) {
    lat += edges_.at(e).latency_s;
  }
  return lat;
}

}  // namespace mpath::topo
