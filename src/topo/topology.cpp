#include "mpath/topo/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace mpath::topo {

std::string_view to_string(LinkKind kind) {
  switch (kind) {
    case LinkKind::NVLink2: return "NVLink2";
    case LinkKind::NVLink3: return "NVLink3";
    case LinkKind::NVLink4: return "NVLink4";
    case LinkKind::PCIe3: return "PCIe3";
    case LinkKind::PCIe4: return "PCIe4";
    case LinkKind::PCIe5: return "PCIe5";
    case LinkKind::UPI: return "UPI";
    case LinkKind::XGMI: return "xGMI";
    case LinkKind::MemChan: return "MemChan";
    case LinkKind::NVSwitch: return "NVSwitch";
  }
  return "?";
}

std::string_view to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Gpu: return "GPU";
    case DeviceKind::Host: return "Host";
  }
  return "?";
}

DeviceId Topology::add_device(DeviceKind kind, int numa_node,
                              std::string name) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(DeviceInfo{id, kind, numa_node, std::move(name)});
  adjacency_.emplace_back();
  route_cache_.clear();
  return id;
}

EdgeId Topology::connect(DeviceId from, DeviceId to, LinkKind kind,
                         double capacity_bps, double latency_s) {
  if (from >= devices_.size() || to >= devices_.size() || from == to) {
    throw std::invalid_argument("Topology::connect: bad endpoints");
  }
  if (capacity_bps <= 0.0 || latency_s < 0.0) {
    throw std::invalid_argument("Topology::connect: bad link parameters");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  std::string name = devices_[from].name + "->" + devices_[to].name + ":" +
                     std::string(to_string(kind));
  edges_.push_back(
      Edge{id, from, to, kind, capacity_bps, latency_s, std::move(name), false});
  adjacency_[from].push_back(id);
  route_cache_.clear();
  return id;
}

std::pair<EdgeId, EdgeId> Topology::connect_duplex(DeviceId a, DeviceId b,
                                                   LinkKind kind,
                                                   double capacity_bps,
                                                   double latency_s) {
  EdgeId ab = connect(a, b, kind, capacity_bps, latency_s);
  EdgeId ba = connect(b, a, kind, capacity_bps, latency_s);
  return {ab, ba};
}

EdgeId Topology::add_memory_channel(DeviceId host, double capacity_bps,
                                    double latency_s) {
  if (host >= devices_.size() || devices_[host].kind != DeviceKind::Host) {
    throw std::invalid_argument(
        "Topology::add_memory_channel: not a Host device");
  }
  if (memory_channels_.count(host) != 0) {
    throw std::invalid_argument(
        "Topology::add_memory_channel: host already has a channel");
  }
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{id, host, host, LinkKind::MemChan, capacity_bps,
                        latency_s, devices_[host].name + ":MemChan", true});
  memory_channels_.emplace(host, id);
  route_cache_.clear();
  return id;
}

const DeviceInfo& Topology::device(DeviceId id) const {
  if (id >= devices_.size()) throw std::out_of_range("bad DeviceId");
  return devices_[id];
}

std::vector<DeviceId> Topology::gpus() const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Gpu) out.push_back(d.id);
  }
  return out;
}

std::vector<DeviceId> Topology::hosts() const {
  std::vector<DeviceId> out;
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host) out.push_back(d.id);
  }
  return out;
}

DeviceId Topology::host_for_numa(int numa_node) const {
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host && d.numa_node == numa_node) return d.id;
  }
  throw std::runtime_error("Topology: no host in NUMA node " +
                           std::to_string(numa_node));
}

DeviceId Topology::nearest_host(DeviceId dev) const {
  const auto& info = device(dev);
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host && d.numa_node == info.numa_node) {
      return d.id;
    }
  }
  for (const auto& d : devices_) {
    if (d.kind == DeviceKind::Host) return d.id;
  }
  throw std::runtime_error("Topology: no host device");
}

std::optional<EdgeId> Topology::direct_edge(DeviceId a, DeviceId b) const {
  std::optional<EdgeId> best;
  for (EdgeId e : adjacency_.at(a)) {
    if (edges_[e].to != b) continue;
    if (!best || edges_[e].capacity_bps > edges_[*best].capacity_bps) {
      best = e;
    }
  }
  return best;
}

const std::vector<EdgeId>& Topology::route(DeviceId from, DeviceId to) const {
  const auto key = std::make_pair(from, to);
  auto it = route_cache_.find(key);
  if (it == route_cache_.end()) {
    it = route_cache_.emplace(key, compute_route(from, to)).first;
  }
  return it->second;
}

std::vector<EdgeId> Topology::compute_route(DeviceId from, DeviceId to) const {
  if (from >= devices_.size() || to >= devices_.size()) {
    throw std::out_of_range("Topology::route: bad DeviceId");
  }
  std::vector<EdgeId> path;
  if (from != to) {
    // Dijkstra over non-memory-channel edges. Edge weight approximates the
    // cost of pushing a reference-sized transfer (1 MiB) through the edge,
    // so higher-bandwidth links are preferred and latency breaks ties.
    constexpr double kRefBytes = 1.0 * (1 << 20);
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(devices_.size(), inf);
    std::vector<EdgeId> via(devices_.size(), 0);
    std::vector<bool> has_via(devices_.size(), false);
    using Item = std::pair<double, DeviceId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    dist[from] = 0.0;
    heap.emplace(0.0, from);
    while (!heap.empty()) {
      auto [d, u] = heap.top();
      heap.pop();
      if (d > dist[u]) continue;
      if (u == to) break;
      // A GPU cannot transparently forward traffic: data only transits a
      // GPU when the hardware routes it (AMD xGMI rings). NVLink/PCIe
      // forwarding requires explicit staging, which is modeled as separate
      // hop transfers by the pipeline engine, not as routing.
      const bool gpu_transit = u != from && devices_[u].kind == DeviceKind::Gpu;
      for (EdgeId e : adjacency_[u]) {
        const Edge& edge = edges_[e];
        if (gpu_transit && (edge.kind != LinkKind::XGMI ||
                            edges_[via[u]].kind != LinkKind::XGMI)) {
          continue;
        }
        const double w = edge.latency_s + kRefBytes / edge.capacity_bps;
        if (dist[u] + w < dist[edge.to]) {
          dist[edge.to] = dist[u] + w;
          via[edge.to] = e;
          has_via[edge.to] = true;
          heap.emplace(dist[edge.to], edge.to);
        }
      }
    }
    if (!has_via[to]) {
      throw std::runtime_error("Topology: no route " + devices_[from].name +
                               " -> " + devices_[to].name);
    }
    for (DeviceId v = to; v != from;) {
      path.push_back(via[v]);
      v = edges_[via[v]].from;
    }
    std::reverse(path.begin(), path.end());
  }
  // DMA into or out of host DRAM consumes the host's memory channel.
  if (auto it = memory_channels_.find(from); it != memory_channels_.end()) {
    path.insert(path.begin(), it->second);
  }
  if (auto it = memory_channels_.find(to); it != memory_channels_.end()) {
    path.push_back(it->second);
  }
  return path;
}

double Topology::route_capacity(std::span<const EdgeId> route) const {
  double cap = std::numeric_limits<double>::infinity();
  for (EdgeId e : route) {
    cap = std::min(cap, edges_.at(e).capacity_bps);
  }
  return cap;
}

double Topology::route_latency(std::span<const EdgeId> route) const {
  double lat = 0.0;
  for (EdgeId e : route) {
    lat += edges_.at(e).latency_s;
  }
  return lat;
}

}  // namespace mpath::topo
