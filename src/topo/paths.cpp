#include "mpath/topo/paths.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpath::topo {

std::string_view to_string(PathKind kind) {
  switch (kind) {
    case PathKind::Direct: return "direct";
    case PathKind::GpuStaged: return "gpu-staged";
    case PathKind::HostStaged: return "host-staged";
  }
  return "?";
}

std::string describe(const PathPlan& plan, const Topology& topo) {
  if (plan.kind == PathKind::Direct) return "direct";
  return "via " + topo.device(plan.stage).name;
}

std::string PathPolicy::label() const {
  // Match the labels used in the paper's figures.
  std::string base = std::to_string(max_gpu_staged + 1) + "_GPUs";
  if (max_gpu_staged == 0) base = "direct";
  if (include_host) base += "_w_host";
  return base;
}

std::vector<PathPlan> enumerate_paths(const Topology& topo, DeviceId src,
                                      DeviceId dst, const PathPolicy& policy) {
  if (src == dst) {
    throw std::invalid_argument("enumerate_paths: src == dst");
  }
  if (topo.device(src).kind != DeviceKind::Gpu ||
      topo.device(dst).kind != DeviceKind::Gpu) {
    throw std::invalid_argument("enumerate_paths: endpoints must be GPUs");
  }
  std::vector<PathPlan> out;
  out.push_back(PathPlan{PathKind::Direct, kInvalidDevice});

  // GPU stages: GPUs with direct links on both hops, by bottleneck capacity.
  struct Candidate {
    DeviceId stage;
    double bottleneck;
  };
  std::vector<Candidate> candidates;
  for (DeviceId g : topo.gpus()) {
    if (g == src || g == dst) continue;
    auto in = topo.direct_edge(src, g);
    auto eg_out = topo.direct_edge(g, dst);
    if (!in || !eg_out) continue;
    const double cap = std::min(topo.edges()[*in].capacity_bps,
                                topo.edges()[*eg_out].capacity_bps);
    candidates.push_back({g, cap});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.bottleneck != b.bottleneck) {
                return a.bottleneck > b.bottleneck;
              }
              return a.stage < b.stage;
            });
  const auto n_staged = std::min<std::size_t>(
      candidates.size(),
      policy.max_gpu_staged < 0 ? 0
                                : static_cast<std::size_t>(
                                      policy.max_gpu_staged));
  for (std::size_t i = 0; i < n_staged; ++i) {
    out.push_back(PathPlan{PathKind::GpuStaged, candidates[i].stage});
  }

  if (policy.include_host) {
    out.push_back(PathPlan{PathKind::HostStaged, topo.nearest_host(src)});
  }
  return out;
}

std::vector<std::vector<EdgeId>> path_hop_routes(const Topology& topo,
                                                 DeviceId src, DeviceId dst,
                                                 const PathPlan& plan) {
  if (plan.kind == PathKind::Direct) {
    return {topo.route(src, dst)};
  }
  return {topo.route(src, plan.stage), topo.route(plan.stage, dst)};
}

}  // namespace mpath::topo
