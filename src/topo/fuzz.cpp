#include "mpath/topo/fuzz.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "mpath/util/rng.hpp"
#include "mpath/util/units.hpp"

namespace mpath::fuzz {

using topo::DeviceId;
using topo::DeviceKind;
using topo::LinkKind;
using util::usec;

// ---------------------------------------------------------------------------
// Spec <-> topology
// ---------------------------------------------------------------------------

topo::System TopoSpec::build() const {
  topo::Topology t(name.empty() ? "fuzz" : name);
  for (const DeviceSpec& d : devices) {
    t.add_device(d.kind, d.numa, d.name);
  }
  for (const MemChannelSpec& m : mem_channels) {
    t.add_memory_channel(m.host, m.capacity_bps, m.latency_s);
  }
  for (const EdgeSpec& e : edges) {
    t.connect(e.from, e.to, e.kind, e.capacity_bps, e.latency_s);
  }
  return topo::System{std::move(t), costs};
}

std::size_t TopoSpec::gpu_count() const {
  return static_cast<std::size_t>(
      std::count_if(devices.begin(), devices.end(), [](const DeviceSpec& d) {
        return d.kind == DeviceKind::Gpu;
      }));
}

std::size_t TopoSpec::host_count() const {
  return devices.size() - gpu_count();
}

bool fully_routable(const topo::Topology& topo) {
  const std::vector<DeviceId> gpus = topo.gpus();
  for (DeviceId a : gpus) {
    for (DeviceId b : gpus) {
      if (a == b) continue;
      try {
        (void)topo.route(a, b);
      } catch (const std::runtime_error&) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

namespace {

constexpr std::pair<LinkKind, std::string_view> kLinkNames[] = {
    {LinkKind::NVLink2, "NVLink2"}, {LinkKind::NVLink3, "NVLink3"},
    {LinkKind::NVLink4, "NVLink4"}, {LinkKind::PCIe3, "PCIe3"},
    {LinkKind::PCIe4, "PCIe4"},     {LinkKind::PCIe5, "PCIe5"},
    {LinkKind::UPI, "UPI"},         {LinkKind::XGMI, "xGMI"},
    {LinkKind::MemChan, "MemChan"}, {LinkKind::NVSwitch, "NVSwitch"},
};

}  // namespace

DeviceKind device_kind_from_string(std::string_view s) {
  if (s == "GPU") return DeviceKind::Gpu;
  if (s == "Host") return DeviceKind::Host;
  throw std::invalid_argument("unknown device kind: " + std::string(s));
}

LinkKind link_kind_from_string(std::string_view s) {
  for (const auto& [kind, lit] : kLinkNames) {
    if (s == lit) return kind;
  }
  throw std::invalid_argument("unknown link kind: " + std::string(s));
}

util::json::Value TopoSpec::to_json() const {
  using util::json::Array;
  using util::json::Value;
  Value v{util::json::Object{}};
  v.set("name", name);
  Array devs;
  for (const DeviceSpec& d : devices) {
    Value dv{util::json::Object{}};
    dv.set("kind", topo::to_string(d.kind));
    dv.set("numa", d.numa);
    dv.set("name", d.name);
    devs.push_back(std::move(dv));
  }
  v.set("devices", std::move(devs));
  Array edgs;
  for (const EdgeSpec& e : edges) {
    Value ev{util::json::Object{}};
    ev.set("from", std::uint64_t{e.from});
    ev.set("to", std::uint64_t{e.to});
    ev.set("kind", topo::to_string(e.kind));
    ev.set("bps", e.capacity_bps);
    ev.set("latency_s", e.latency_s);
    edgs.push_back(std::move(ev));
  }
  v.set("edges", std::move(edgs));
  Array mems;
  for (const MemChannelSpec& m : mem_channels) {
    Value mv{util::json::Object{}};
    mv.set("host", std::uint64_t{m.host});
    mv.set("bps", m.capacity_bps);
    mv.set("latency_s", m.latency_s);
    mems.push_back(std::move(mv));
  }
  v.set("memory_channels", std::move(mems));
  Value cv{util::json::Object{}};
  cv.set("op_launch_s", costs.op_launch_s);
  cv.set("event_record_s", costs.event_record_s);
  cv.set("event_wait_s", costs.event_wait_s);
  cv.set("stage_sync_s", costs.stage_sync_s);
  cv.set("host_stage_sync_s", costs.host_stage_sync_s);
  cv.set("ipc_open_s", costs.ipc_open_s);
  cv.set("rendezvous_s", costs.rendezvous_s);
  cv.set("local_copy_bps", costs.local_copy_bps);
  cv.set("jitter_rel", costs.jitter_rel);
  v.set("costs", std::move(cv));
  return v;
}

TopoSpec TopoSpec::from_json(const util::json::Value& v) {
  TopoSpec spec;
  spec.name = v.at("name").as_string();
  for (const util::json::Value& dv : v.at("devices").as_array()) {
    DeviceSpec d;
    d.kind = device_kind_from_string(dv.at("kind").as_string());
    d.numa = static_cast<int>(dv.at("numa").as_int());
    d.name = dv.at("name").as_string();
    spec.devices.push_back(std::move(d));
  }
  for (const util::json::Value& ev : v.at("edges").as_array()) {
    EdgeSpec e;
    e.from = static_cast<DeviceId>(ev.at("from").as_uint());
    e.to = static_cast<DeviceId>(ev.at("to").as_uint());
    e.kind = link_kind_from_string(ev.at("kind").as_string());
    e.capacity_bps = ev.at("bps").as_number();
    e.latency_s = ev.at("latency_s").as_number();
    spec.edges.push_back(e);
  }
  for (const util::json::Value& mv : v.at("memory_channels").as_array()) {
    MemChannelSpec m;
    m.host = static_cast<DeviceId>(mv.at("host").as_uint());
    m.capacity_bps = mv.at("bps").as_number();
    m.latency_s = mv.at("latency_s").as_number();
    spec.mem_channels.push_back(m);
  }
  const util::json::Value& cv = v.at("costs");
  spec.costs.op_launch_s = cv.at("op_launch_s").as_number();
  spec.costs.event_record_s = cv.at("event_record_s").as_number();
  spec.costs.event_wait_s = cv.at("event_wait_s").as_number();
  spec.costs.stage_sync_s = cv.at("stage_sync_s").as_number();
  spec.costs.host_stage_sync_s = cv.at("host_stage_sync_s").as_number();
  spec.costs.ipc_open_s = cv.at("ipc_open_s").as_number();
  spec.costs.rendezvous_s = cv.at("rendezvous_s").as_number();
  spec.costs.local_copy_bps = cv.at("local_copy_bps").as_number();
  spec.costs.jitter_rel = cv.at("jitter_rel").as_number();
  return spec;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {

enum class Fabric { kPcieOnly, kNvlinkMesh, kNvlinkPartial, kNvswitch,
                    kXgmiRing, kMixed };

struct Gen {
  util::Rng rng;
  const GeneratorOptions& opt;
  TopoSpec spec;

  double clamp_gbps(double g) const {
    return std::clamp(g, opt.min_gbps, opt.max_gbps);
  }
  /// Log-uniform capacity draw inside [lo, hi] GB/s (intersected with the
  /// configured range), in bytes/s.
  double draw_bps(double lo_gbps, double hi_gbps) {
    const double lo = clamp_gbps(lo_gbps);
    const double hi = std::max(lo, clamp_gbps(hi_gbps));
    const double g = std::exp(rng.uniform(std::log(lo), std::log(hi)));
    return util::gbps(g);
  }
  double draw_latency() {
    return usec(rng.uniform(opt.min_latency_us, opt.max_latency_us));
  }
  bool chance(double p) { return rng.uniform(0.0, 1.0) < p; }

  /// Duplex link; with asymmetry enabled the reverse direction may get an
  /// independently drawn capacity (same latency — wire length is shared).
  void connect(DeviceId a, DeviceId b, LinkKind kind, double lo_gbps,
               double hi_gbps, bool may_skew) {
    const double fwd = draw_bps(lo_gbps, hi_gbps);
    const double lat = draw_latency();
    double rev = fwd;
    if (may_skew && opt.allow_asymmetric && chance(0.3)) {
      rev = draw_bps(lo_gbps, hi_gbps);
    }
    spec.edges.push_back({a, b, kind, fwd, lat});
    spec.edges.push_back({b, a, kind, rev, lat});
  }
};

}  // namespace

TopoSpec generate_topology(std::uint64_t seed,
                           const GeneratorOptions& options) {
  if (options.min_gpus < 2 || options.max_gpus < options.min_gpus) {
    throw std::invalid_argument("generate_topology: bad GPU count range");
  }
  if (!(options.min_gbps > 0.0) || options.max_gbps < options.min_gbps) {
    throw std::invalid_argument("generate_topology: bad capacity range");
  }
  Gen g{util::Rng(mix_seed(seed, 0x0F0F0F0Full)), options, {}};
  g.spec.name = "fuzz-" + std::to_string(seed);

  const int n_numa = static_cast<int>(
      g.rng.uniform_int(1, std::max(1, options.max_numa_domains)));
  const int n_gpus = static_cast<int>(
      g.rng.uniform_int(options.min_gpus, options.max_gpus));

  // Hosts first (device ids 0..n_numa-1): one per NUMA domain, each with a
  // DRAM channel. Chained by inter-socket fabric so hosts always form a
  // connected backbone.
  for (int i = 0; i < n_numa; ++i) {
    g.spec.devices.push_back(
        {DeviceKind::Host, i, "host" + std::to_string(i)});
    g.spec.mem_channels.push_back(
        {static_cast<DeviceId>(i), g.draw_bps(12.0, 80.0),
         usec(g.rng.uniform(0.15, 0.3))});
  }
  for (int i = 0; i + 1 < n_numa; ++i) {
    g.connect(static_cast<DeviceId>(i), static_cast<DeviceId>(i + 1),
              LinkKind::UPI, 10.0, 40.0, /*may_skew=*/false);
  }
  // Extra cross-socket links (beyond the chain) with some probability.
  for (int a = 0; a < n_numa; ++a) {
    for (int b = a + 2; b < n_numa; ++b) {
      if (g.chance(0.4)) {
        g.connect(static_cast<DeviceId>(a), static_cast<DeviceId>(b),
                  LinkKind::UPI, 8.0, 30.0, /*may_skew=*/false);
      }
    }
  }

  // GPUs: each lands in a random NUMA domain with a PCIe uplink to that
  // domain's host — the connectivity guarantee no fabric draw can break.
  const LinkKind pcie_gen = std::array{LinkKind::PCIe3, LinkKind::PCIe4,
                                       LinkKind::PCIe5}[static_cast<std::size_t>(
      g.rng.uniform_int(0, 2))];
  const double pcie_base =
      pcie_gen == LinkKind::PCIe3 ? 12.0 : pcie_gen == LinkKind::PCIe4 ? 24.0
                                                                       : 48.0;
  std::vector<DeviceId> gpus;
  for (int i = 0; i < n_gpus; ++i) {
    const int numa = static_cast<int>(g.rng.uniform_int(0, n_numa - 1));
    const auto id = static_cast<DeviceId>(g.spec.devices.size());
    g.spec.devices.push_back(
        {DeviceKind::Gpu, numa, "gpu" + std::to_string(i)});
    gpus.push_back(id);
    g.connect(id, static_cast<DeviceId>(numa), pcie_gen, pcie_base * 0.8,
              pcie_base * 1.1, /*may_skew=*/true);
  }

  // Fabric family.
  std::vector<Fabric> fabrics{Fabric::kPcieOnly};
  if (options.allow_nvlink) {
    fabrics.push_back(Fabric::kNvlinkMesh);
    fabrics.push_back(Fabric::kNvlinkPartial);
  }
  if (options.allow_nvswitch) fabrics.push_back(Fabric::kNvswitch);
  if (options.allow_xgmi && n_gpus >= 3) fabrics.push_back(Fabric::kXgmiRing);
  if (options.allow_nvlink && options.allow_xgmi && n_gpus >= 3) {
    fabrics.push_back(Fabric::kMixed);
  }
  const Fabric fabric = fabrics[static_cast<std::size_t>(
      g.rng.uniform_int(0, static_cast<std::int64_t>(fabrics.size()) - 1))];

  const LinkKind nv_gen = std::array{LinkKind::NVLink2, LinkKind::NVLink3,
                                     LinkKind::NVLink4}[static_cast<std::size_t>(
      g.rng.uniform_int(0, 2))];
  const auto nvlink_pairs = [&](double link_prob) {
    for (std::size_t a = 0; a < gpus.size(); ++a) {
      for (std::size_t b = a + 1; b < gpus.size(); ++b) {
        if (g.chance(link_prob)) {
          g.connect(gpus[a], gpus[b], nv_gen, 23.0, 300.0, /*may_skew=*/true);
        }
      }
    }
  };
  const auto xgmi_ring = [&] {
    // Ring over a random GPU permutation; occasional chord.
    std::vector<std::size_t> order(gpus.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[static_cast<std::size_t>(g.rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);
    }
    for (std::size_t i = 0; i < order.size(); ++i) {
      g.connect(gpus[order[i]], gpus[order[(i + 1) % order.size()]],
                LinkKind::XGMI, 25.0, 100.0, /*may_skew=*/false);
    }
    if (order.size() >= 4 && g.chance(0.3)) {
      g.connect(gpus[order[0]], gpus[order[order.size() / 2]], LinkKind::XGMI,
                25.0, 100.0, /*may_skew=*/false);
    }
  };
  switch (fabric) {
    case Fabric::kPcieOnly: break;
    case Fabric::kNvlinkMesh: nvlink_pairs(1.0); break;
    case Fabric::kNvlinkPartial: nvlink_pairs(0.55); break;
    case Fabric::kNvswitch: {
      // The switch is modeled like the DGX preset: a Host pseudo-device
      // with no memory channel, added AFTER the real hosts so that
      // nearest_host() never selects it as a staging target.
      const auto sw = static_cast<DeviceId>(g.spec.devices.size());
      g.spec.devices.push_back({DeviceKind::Host, 0, "nvswitch"});
      for (DeviceId gpu : gpus) {
        g.connect(gpu, sw, LinkKind::NVSwitch, 100.0, 300.0,
                  /*may_skew=*/false);
      }
      break;
    }
    case Fabric::kXgmiRing: xgmi_ring(); break;
    case Fabric::kMixed:
      nvlink_pairs(0.35);
      xgmi_ring();
      break;
  }

  // Software costs: mild per-system perturbation of the defaults. Jitter is
  // zero so the kFull fluid simulation is a noise-free oracle — every
  // flagged mispredict is structural, not measurement luck.
  topo::SoftwareCosts& c = g.spec.costs;
  const double s = g.rng.uniform(0.7, 1.3);
  c.op_launch_s *= s;
  c.event_record_s *= s;
  c.event_wait_s *= s;
  c.stage_sync_s *= g.rng.uniform(0.7, 1.4);
  c.host_stage_sync_s *= g.rng.uniform(0.7, 1.4);
  c.ipc_open_s *= g.rng.uniform(0.5, 1.5);
  c.rendezvous_s *= g.rng.uniform(0.7, 1.3);
  c.jitter_rel = 0.0;
  return g.spec;
}

}  // namespace mpath::fuzz
