#include "mpath/topo/system.hpp"

#include <stdexcept>

#include "mpath/util/units.hpp"

namespace mpath::topo {

using util::gbps;
using util::usec;

System make_beluga() {
  Topology t("beluga");
  const DeviceId host = t.add_device(DeviceKind::Host, 0, "host0");
  t.add_memory_channel(host, gbps(30.0), usec(0.2));

  std::vector<DeviceId> gpu;
  for (int i = 0; i < 4; ++i) {
    gpu.push_back(t.add_device(DeviceKind::Gpu, 0, "gpu" + std::to_string(i)));
  }
  // Full NVLink2 mesh: two bricks per pair, ~23 GB/s/dir each -> 46 GB/s.
  for (std::size_t a = 0; a < gpu.size(); ++a) {
    for (std::size_t b = a + 1; b < gpu.size(); ++b) {
      t.connect_duplex(gpu[a], gpu[b], LinkKind::NVLink2, gbps(46.0),
                       usec(1.0));
    }
  }
  // Dedicated PCIe3 x16 per GPU to the host root complex.
  for (DeviceId g : gpu) {
    t.connect_duplex(g, host, LinkKind::PCIe3, gbps(12.0), usec(1.6));
  }

  SoftwareCosts costs;  // defaults tuned for the V100/PCIe3 era
  costs.ipc_open_s = 140e-6;
  return System{std::move(t), costs};
}

System make_narval() {
  Topology t("narval");
  // One NUMA domain (host + private DRAM channel) per GPU; see paper Fig. 3.
  std::vector<DeviceId> host, gpu;
  for (int i = 0; i < 4; ++i) {
    host.push_back(
        t.add_device(DeviceKind::Host, i, "host" + std::to_string(i)));
    t.add_memory_channel(host[static_cast<std::size_t>(i)], gbps(16.0),
                         usec(0.25));
  }
  for (int i = 0; i < 4; ++i) {
    gpu.push_back(t.add_device(DeviceKind::Gpu, i, "gpu" + std::to_string(i)));
  }
  // Full NVLink3 mesh: four bricks per pair, ~23 GB/s/dir each -> 92 GB/s.
  for (std::size_t a = 0; a < gpu.size(); ++a) {
    for (std::size_t b = a + 1; b < gpu.size(); ++b) {
      t.connect_duplex(gpu[a], gpu[b], LinkKind::NVLink3, gbps(92.0),
                       usec(0.9));
    }
  }
  // PCIe4 x16 per GPU into its own NUMA domain.
  for (std::size_t i = 0; i < 4; ++i) {
    t.connect_duplex(gpu[i], host[i], LinkKind::PCIe4, gbps(24.0), usec(1.4));
  }
  // Inter-domain fabric. Domains {0,1} and {2,3} share a socket (fast
  // on-die fabric); cross-socket pairs ride the slower UPI-equivalent.
  auto fabric = [&](std::size_t a, std::size_t b, double bw, double lat) {
    t.connect_duplex(host[a], host[b], LinkKind::UPI, gbps(bw), usec(lat));
  };
  fabric(0, 1, 40.0, 0.5);
  fabric(2, 3, 40.0, 0.5);
  fabric(0, 2, 18.0, 1.0);
  fabric(0, 3, 18.0, 1.0);
  fabric(1, 2, 18.0, 1.0);
  fabric(1, 3, 18.0, 1.0);

  SoftwareCosts costs;
  costs.op_launch_s = 1.0e-6;
  costs.ipc_open_s = 110e-6;
  costs.host_stage_sync_s = 5.0e-6;  // cross-NUMA staging is costlier
  return System{std::move(t), costs};
}

System make_dgx_nvswitch() {
  Topology t("dgx-nvswitch");
  const DeviceId host = t.add_device(DeviceKind::Host, 0, "host0");
  t.add_memory_channel(host, gbps(80.0), usec(0.2));
  const DeviceId sw = t.add_device(DeviceKind::Host, 0, "nvswitch");
  std::vector<DeviceId> gpu;
  for (int i = 0; i < 8; ++i) {
    gpu.push_back(t.add_device(DeviceKind::Gpu, 0, "gpu" + std::to_string(i)));
  }
  for (DeviceId g : gpu) {
    // All-to-all through the switch at full NVLink4 bandwidth per GPU.
    t.connect_duplex(g, sw, LinkKind::NVSwitch, gbps(300.0), usec(0.7));
    t.connect_duplex(g, host, LinkKind::PCIe5, gbps(48.0), usec(1.2));
  }

  SoftwareCosts costs;
  costs.op_launch_s = 0.9e-6;
  return System{std::move(t), costs};
}

System make_pcie_only() {
  Topology t("pcie-only");
  std::vector<DeviceId> host;
  for (int i = 0; i < 2; ++i) {
    host.push_back(
        t.add_device(DeviceKind::Host, i, "host" + std::to_string(i)));
    t.add_memory_channel(host[static_cast<std::size_t>(i)], gbps(25.0),
                         usec(0.2));
  }
  t.connect_duplex(host[0], host[1], LinkKind::UPI, gbps(20.0), usec(1.0));
  std::vector<DeviceId> gpu;
  for (int i = 0; i < 4; ++i) {
    const int numa = i / 2;
    gpu.push_back(
        t.add_device(DeviceKind::Gpu, numa, "gpu" + std::to_string(i)));
    t.connect_duplex(gpu.back(), host[static_cast<std::size_t>(numa)],
                     LinkKind::PCIe4, gbps(24.0), usec(1.5));
  }
  return System{std::move(t), SoftwareCosts{}};
}

System make_amd_ring() {
  Topology t("amd-ring");
  const DeviceId host = t.add_device(DeviceKind::Host, 0, "host0");
  t.add_memory_channel(host, gbps(40.0), usec(0.2));
  std::vector<DeviceId> gpu;
  for (int i = 0; i < 4; ++i) {
    gpu.push_back(t.add_device(DeviceKind::Gpu, 0, "gpu" + std::to_string(i)));
    t.connect_duplex(gpu.back(), host, LinkKind::PCIe4, gbps(24.0), usec(1.5));
  }
  // xGMI ring: 0-1-2-3-0. Non-adjacent pairs hop through a neighbor GPU.
  for (std::size_t i = 0; i < 4; ++i) {
    t.connect_duplex(gpu[i], gpu[(i + 1) % 4], LinkKind::XGMI, gbps(50.0),
                     usec(1.1));
  }
  return System{std::move(t), SoftwareCosts{}};
}

System make_system(std::string_view name) {
  if (name == "beluga") return make_beluga();
  if (name == "narval") return make_narval();
  if (name == "dgx") return make_dgx_nvswitch();
  if (name == "pcie") return make_pcie_only();
  if (name == "amd") return make_amd_ring();
  throw std::invalid_argument("unknown system preset: " + std::string(name));
}

}  // namespace mpath::topo
