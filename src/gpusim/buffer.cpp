#include "mpath/gpusim/buffer.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

namespace mpath::gpusim {

namespace {
std::atomic<BufferId> g_next_buffer_id{1};
}

DeviceBuffer::DeviceBuffer(topo::DeviceId device, std::size_t size,
                           Payload payload)
    : id_(g_next_buffer_id.fetch_add(1, std::memory_order_relaxed)),
      device_(device),
      size_(size),
      bytes_(payload == Payload::Materialized ? size : 0) {}

void DeviceBuffer::check_region(std::size_t offset, std::size_t len) const {
  if (offset + len > size_) {
    throw std::out_of_range("DeviceBuffer::region out of bounds");
  }
}

std::span<std::byte> DeviceBuffer::bytes() {
  if (!materialized()) {
    throw std::logic_error("DeviceBuffer: simulated payload has no bytes");
  }
  return bytes_;
}

std::span<const std::byte> DeviceBuffer::bytes() const {
  if (!materialized()) {
    throw std::logic_error("DeviceBuffer: simulated payload has no bytes");
  }
  return bytes_;
}

std::span<std::byte> DeviceBuffer::region(std::size_t offset,
                                          std::size_t len) {
  check_region(offset, len);
  return bytes().subspan(offset, len);
}

std::span<const std::byte> DeviceBuffer::region(std::size_t offset,
                                                std::size_t len) const {
  check_region(offset, len);
  return bytes().subspan(offset, len);
}

void DeviceBuffer::fill_pattern(std::uint64_t seed) {
  if (!materialized()) return;
  // splitmix64 over byte index: cheap, deterministic, position-dependent.
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (i + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    bytes_[i] = static_cast<std::byte>((z ^ (z >> 31)) & 0xFF);
  }
}

bool DeviceBuffer::same_content(const DeviceBuffer& other) const {
  if (!materialized() || !other.materialized()) {
    throw std::logic_error(
        "DeviceBuffer::same_content: simulated payloads are not comparable");
  }
  return bytes_.size() == other.bytes_.size() &&
         std::memcmp(bytes_.data(), other.bytes_.data(), bytes_.size()) == 0;
}

}  // namespace mpath::gpusim
