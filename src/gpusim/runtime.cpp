#include "mpath/gpusim/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "mpath/util/units.hpp"

namespace mpath::gpusim {

void CancelToken::cancel() {
  if (cancelled_) return;
  cancelled_ = true;
  for (sim::FlowId id : in_flight_) {
    // A flow that completed in this same instant has a stale id; cancel_flow
    // returns false and the copy counts as delivered.
    if (net_->cancel_flow(id)) cancelled_ids_.push_back(id);
  }
  in_flight_.clear();
}

bool CancelToken::was_cancelled(sim::FlowId id) const {
  return std::find(cancelled_ids_.begin(), cancelled_ids_.end(), id) !=
         cancelled_ids_.end();
}

namespace {
/// Order-stable removal (SmallVec analogue of std::erase on a vector).
void erase_flow(util::SmallVec<sim::FlowId, 4>& v, sim::FlowId id) {
  const auto it = std::find(v.begin(), v.end(), id);
  if (it != v.end()) v.erase(it);
}
}  // namespace

GpuRuntime::GpuRuntime(const topo::System& system, sim::Engine& engine,
                       sim::FluidNetwork& network, std::uint64_t seed)
    : system_(&system),
      engine_(&engine),
      network_(&network),
      binding_(system.topology, network),
      rng_(seed) {}

StreamId GpuRuntime::create_stream(topo::DeviceId device) {
  MPATH_ASSERT_OWNER(owner_, "gpusim::GpuRuntime (create_stream)");
  auto tail = sim::make_pooled<sim::Latch>(*engine_);
  tail->fire();  // empty stream is drained
  streams_.push_back(Stream{device, std::move(tail)});
  return static_cast<StreamId>(streams_.size() - 1);
}

EventId GpuRuntime::create_event() {
  MPATH_ASSERT_OWNER(owner_, "gpusim::GpuRuntime (create_event)");
  auto latch = sim::make_pooled<sim::Latch>(*engine_);
  latch->fire();  // never-recorded events do not block (CUDA semantics)
  events_.push_back(Event{std::move(latch)});
  return static_cast<EventId>(events_.size() - 1);
}

EventId GpuRuntime::acquire_event() {
  MPATH_ASSERT_OWNER(owner_, "gpusim::GpuRuntime (acquire_event)");
  ++events_acquired_;
  if (!event_free_list_.empty()) {
    const EventId ev = event_free_list_.back();
    event_free_list_.pop_back();
    return ev;
  }
  return create_event();
}

void GpuRuntime::release_event(EventId event) {
  MPATH_ASSERT_OWNER(owner_, "gpusim::GpuRuntime (release_event)");
  assert(events_released_ < events_acquired_ &&
         "GpuRuntime: release_event without a matching acquire_event");
  ++events_released_;
  event_free_list_.push_back(event);
}

CancelTokenPtr GpuRuntime::make_cancel_token() const {
  return sim::make_pooled<CancelToken>(*network_);
}

bool GpuRuntime::event_fired(EventId event) const {
  return events_.at(event).latch->fired();
}

template <typename MakeOp>
void GpuRuntime::enqueue(StreamId stream, MakeOp&& make_op) {
  MPATH_ASSERT_OWNER(owner_, "gpusim::GpuRuntime (stream enqueue)");
  Stream& s = streams_.at(stream);
  auto done = sim::make_pooled<sim::Latch>(*engine_);
  engine_->spawn(make_op(s.tail, done), "gpusim-op");
  s.tail = std::move(done);
  ++ops_issued_;
  if (tracer_ != nullptr && --ops_until_sample_ == 0) {
    ops_until_sample_ = counter_stride_;
    std::size_t busy = 0;
    for (const Stream& st : streams_) {
      if (!st.tail->fired()) ++busy;
    }
    tracer_->add_counter("gpusim", "streams_busy", engine_->now(),
                         static_cast<double>(busy));
  }
}

sim::Task<void> GpuRuntime::run_copy(std::shared_ptr<sim::Latch> prev,
                                     std::shared_ptr<sim::Latch> done,
                                     DeviceBuffer& dst, std::size_t dst_offset,
                                     const DeviceBuffer& src,
                                     std::size_t src_offset, std::size_t len,
                                     StreamId stream, CancelTokenPtr token,
                                     DoneHook on_done) {
  co_await prev->wait();
  if (token && token->cancelled()) {
    if (on_done) on_done(false);
    done->fire();  // drain without moving data or paying dispatch latency
    co_return;
  }
  const double trace_start = engine_->now();
  // Device-side dispatch latency for the copy engine.
  co_await engine_->delay(costs().op_launch_s *
                          rng_.jitter(costs().jitter_rel));
  bool delivered = true;
  if (len > 0) {
    if (src.device() == dst.device()) {
      co_await engine_->delay(static_cast<double>(len) /
                              costs().local_copy_bps);
    } else if (!token) {
      co_await network_->transfer(
          binding_.route_links(src.device(), dst.device()),
          static_cast<double>(len));
    } else {
      // Cancellable variant of FluidNetwork::transfer: the flow id is
      // registered with the token while the bytes stream so that
      // token->cancel() can abort it mid-flight.
      const sim::Route route = binding_.route_links(src.device(), dst.device());
      double latency = 0.0;
      for (sim::LinkId l : route) latency += network_->link(l).latency_s;
      if (latency > 0.0) co_await engine_->delay(latency);
      if (token->cancelled()) {
        delivered = false;
      } else {
        auto latch = std::make_unique<sim::Latch>(*engine_);
        sim::Latch* lp = latch.get();
        const sim::FlowId fid = network_->start_flow(
            route, static_cast<double>(len), latch.release());
        token->in_flight_.push_back(fid);
        co_await lp->wait();
        erase_flow(token->in_flight_, fid);
        delivered = !token->was_cancelled(fid);
      }
    }
    if (delivered) {
      // Payload lands at completion time; simulated buffers carry none.
      if (dst.materialized() && src.materialized()) {
        std::memcpy(dst.region(dst_offset, len).data(),
                    src.region(src_offset, len).data(), len);
      }
      bytes_copied_ += len;
    }
  }
  if (tracer_ != nullptr) {
    tracer_->add_span(stream_track(stream),
                      std::string(delivered ? "copy " : "copy(cancelled) ") +
                          util::format_bytes(len) + " " +
                          topology().device(src.device()).name + "->" +
                          topology().device(dst.device()).name,
                      trace_start, engine_->now());
  }
  if (on_done) on_done(delivered);
  done->fire();
}

std::string GpuRuntime::stream_track(StreamId stream) const {
  return "stream" + std::to_string(stream) + " (" +
         topology().device(streams_.at(stream).device).name + ")";
}

void GpuRuntime::memcpy_async(DeviceBuffer& dst, std::size_t dst_offset,
                              const DeviceBuffer& src, std::size_t src_offset,
                              std::size_t len, StreamId stream,
                              CancelTokenPtr token, DoneHook on_done) {
  // Validate regions eagerly: misuse should fail at the call site, not at
  // some later simulated instant.
  dst.check_region(dst_offset, len);
  src.check_region(src_offset, len);
  enqueue(stream, [&, dst_offset, src_offset, len, stream](
                      std::shared_ptr<sim::Latch> prev,
                      std::shared_ptr<sim::Latch> done) {
    return run_copy(std::move(prev), std::move(done), dst, dst_offset, src,
                    src_offset, len, stream, std::move(token),
                    std::move(on_done));
  });
}

void GpuRuntime::record_event(EventId event, StreamId stream) {
  auto recorded = sim::make_pooled<sim::Latch>(*engine_);
  events_.at(event).latch = recorded;
  enqueue(stream, [this, recorded](std::shared_ptr<sim::Latch> prev,
                                   std::shared_ptr<sim::Latch> done)
                      -> sim::Task<void> {
    return [](GpuRuntime* rt, std::shared_ptr<sim::Latch> p,
              std::shared_ptr<sim::Latch> rec,
              std::shared_ptr<sim::Latch> d) -> sim::Task<void> {
      co_await p->wait();
      co_await rt->engine_->delay(rt->costs().event_record_s *
                                  rt->rng_.jitter(rt->costs().jitter_rel));
      rec->fire();
      d->fire();
    }(this, std::move(prev), recorded, std::move(done));
  });
}

void GpuRuntime::wait_event(StreamId stream, EventId event) {
  // CUDA captures the event state at enqueue time.
  auto latch = events_.at(event).latch;
  enqueue(stream, [this, latch](std::shared_ptr<sim::Latch> prev,
                                std::shared_ptr<sim::Latch> done)
                      -> sim::Task<void> {
    return [](GpuRuntime* rt, std::shared_ptr<sim::Latch> p,
              std::shared_ptr<sim::Latch> ev,
              std::shared_ptr<sim::Latch> d) -> sim::Task<void> {
      co_await p->wait();
      co_await ev->wait();
      co_await rt->engine_->delay(rt->costs().event_wait_s *
                                  rt->rng_.jitter(rt->costs().jitter_rel));
      d->fire();
    }(this, std::move(prev), std::move(latch), std::move(done));
  });
}

void GpuRuntime::stream_delay(StreamId stream, double seconds) {
  enqueue(stream, [this, seconds](std::shared_ptr<sim::Latch> prev,
                                  std::shared_ptr<sim::Latch> done)
                      -> sim::Task<void> {
    return [](GpuRuntime* rt, double dt, std::shared_ptr<sim::Latch> p,
              std::shared_ptr<sim::Latch> d) -> sim::Task<void> {
      co_await p->wait();
      co_await rt->engine_->delay(dt);
      d->fire();
    }(this, seconds, std::move(prev), std::move(done));
  });
}

sim::Task<void> GpuRuntime::synchronize(StreamId stream) {
  auto tail = streams_.at(stream).tail;
  co_await tail->wait();
}

sim::Task<void> GpuRuntime::synchronize_event(EventId event) {
  auto latch = events_.at(event).latch;
  co_await latch->wait();
}

sim::Task<void> GpuRuntime::device_synchronize() {
  // Snapshot tails first: ops enqueued after this call are not covered.
  std::vector<std::shared_ptr<sim::Latch>> tails;
  tails.reserve(streams_.size());
  for (const Stream& s : streams_) tails.push_back(s.tail);
  for (auto& t : tails) co_await t->wait();
}

sim::Task<void> GpuRuntime::ipc_open(topo::DeviceId opener,
                                     const DeviceBuffer& buffer) {
  const auto key = std::make_pair(opener, buffer.id());
  if (ipc_cache_.contains(key)) co_return;
  co_await engine_->delay(costs().ipc_open_s *
                          rng_.jitter(costs().jitter_rel));
  ipc_cache_.insert(key);
}

bool GpuRuntime::ipc_cached(topo::DeviceId opener,
                            const DeviceBuffer& buffer) const {
  return ipc_cache_.contains(std::make_pair(opener, buffer.id()));
}

void GpuRuntime::ipc_cache_clear() { ipc_cache_.clear(); }

}  // namespace mpath::gpusim
