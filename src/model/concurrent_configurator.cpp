#include "mpath/model/concurrent_configurator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace mpath::model {

namespace {
ConfiguratorOptions core_options(ConfiguratorOptions options) {
  // The wrapped configurator is only ever used through its pure entry
  // points; disable its serial cache so nobody can reach it by accident.
  options.cache_enabled = false;
  return options;
}
}  // namespace

ConcurrentConfigurator::ConcurrentConfigurator(
    const ModelRegistry& registry, ConfiguratorOptions options,
    const CalibrationStore* calibration, std::size_t shards)
    : core_(registry, core_options(options)), calibration_(calibration) {
  if (calibration != nullptr) core_.set_calibration(calibration);
  const std::size_t n = std::bit_ceil(std::max<std::size_t>(shards, 1));
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ =
      options.cache_capacity > 0
          ? std::max<std::size_t>(options.cache_capacity / n, 1)
          : 0;
}

bool ConcurrentConfigurator::Entry::matches(
    topo::DeviceId s, topo::DeviceId d, std::uint64_t b,
    std::span<const topo::PathPlan> p) const {
  return src == s && dst == d && bytes == b &&
         std::equal(paths.begin(), paths.end(), p.begin(), p.end());
}

TransferConfig ConcurrentConfigurator::configure(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) {
  // Read the version once: the entry is stamped with the same value that
  // was checked, so a publication racing this call at worst costs one
  // recompute on the next lookup, never a stale hit passing as fresh.
  const std::uint64_t cal_version =
      calibration_ != nullptr ? calibration_->version() : 0;
  const std::uint64_t key = core_.cache_key(src, dst, bytes, paths);
  Shard& shard = shard_for(key);
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      if (it->second.matches(src, dst, bytes, paths)) {
        if (it->second.cal_version == cal_version) {
          ++shard.counters.hits;
          shard.lru.splice(shard.lru.begin(), shard.lru, it->second.recency);
          return it->second.config;
        }
        ++shard.counters.invalidations;
      } else {
        ++shard.counters.collisions;
      }
    }
    ++shard.counters.misses;
  }

  // The Algorithm 1 solve runs outside the shard lock: concurrent misses
  // on different tuples (or even the same one) never serialize on it.
  TransferConfig config = core_.compute_config(src, dst, bytes, paths);

  Entry fresh;
  fresh.config = config;
  fresh.src = src;
  fresh.dst = dst;
  fresh.bytes = bytes;
  fresh.paths.assign(paths.begin(), paths.end());
  fresh.cal_version = cal_version;
  {
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Replace in place (collision, stale calibration, or a racing thread
      // that filled this key first): the key already owns an LRU node, so
      // move that node to the front and keep its iterator across the
      // assignment — the entry's stored recency must never point at
      // another key's node or at end().
      const auto node = it->second.recency;
      shard.lru.splice(shard.lru.begin(), shard.lru, node);
      it->second = std::move(fresh);
      it->second.recency = node;
    } else {
      shard.lru.push_front(key);
      it = shard.map.emplace(key, std::move(fresh)).first;
      it->second.recency = shard.lru.begin();
    }
    while (per_shard_capacity_ > 0 &&
           shard.map.size() > per_shard_capacity_) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
      ++shard.counters.evictions;
    }
  }
  return config;
}

ConcurrentConfiguratorStats ConcurrentConfigurator::stats() const {
  ConcurrentConfiguratorStats out;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mu);
    out.hits += s->counters.hits;
    out.misses += s->counters.misses;
    out.collisions += s->counters.collisions;
    out.invalidations += s->counters.invalidations;
    out.evictions += s->counters.evictions;
  }
  return out;
}

std::size_t ConcurrentConfigurator::cache_size() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    const std::lock_guard<std::mutex> lock(s->mu);
    n += s->map.size();
  }
  return n;
}

}  // namespace mpath::model
