#include "mpath/model/recalibrator.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace mpath::model {

Recalibrator::Recalibrator(CalibrationStore& store,
                           RecalibratorOptions options)
    : store_(&store), options_(options) {}

void Recalibrator::observe(topo::DeviceId src, topo::DeviceId dst,
                           const TransferConfig& config, double actual_s) {
  if (actual_s <= 0.0 || config.predicted_time <= 0.0) return;
  const double n = static_cast<double>(config.total_bytes);
  // The equal-time theta solve makes every active path's predicted finish
  // ~the transfer's predicted finish, and only the transfer-level duration
  // is observable — so each active path is charged the transfer ratio,
  // confidence-weighted by its theta share.
  const double ratio = actual_s / config.predicted_time;

  std::vector<std::pair<PathCalKey, PathCalibration>> updates;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.observations;
    const CalibrationStore::SnapshotPtr snap = store_->snapshot();
    for (const PathShare& share : config.paths) {
      if (share.bytes == 0 || share.predicted_time <= 0.0) continue;
      const PathCalKey key = PathCalKey::of(src, dst, share.plan);
      Ewma& e = ewma_[key];
      const double g = std::min(1.0, options_.gain * share.theta);
      e.ratio += g * (ratio - e.ratio);
      ++e.samples;
      if (e.samples < options_.min_samples ||
          std::abs(e.ratio - 1.0) <= options_.drift_threshold) {
        continue;
      }
      // Attribute the residual between the bandwidth and latency terms by
      // their share of the modeled path time: a big message's drift is a
      // bandwidth story, a tiny one's is latency.
      const double bw_time = share.theta * n * share.terms.omega;
      const double path_time = bw_time + share.terms.delta;
      const double w = path_time > 0.0 ? bw_time / path_time : 1.0;
      const double bw_corr = 1.0 + w * (e.ratio - 1.0);
      const double lat_corr = 1.0 + (1.0 - w) * (e.ratio - 1.0);
      const PathCalibration* cur = snap->find(src, dst, share.plan);
      const PathCalibration base = cur != nullptr ? *cur : PathCalibration{};
      PathCalibration next;
      // Slower than predicted (ratio > 1) means less effective bandwidth
      // (beta_scale shrinks) and more startup latency (alpha_scale grows).
      // A non-positive bw_corr would flip the correction's sign, so it is
      // pinned to the guard-rail floor (and counted as clamped below).
      const double raw_beta =
          bw_corr > 0.0 ? base.beta_scale / bw_corr : options_.min_scale;
      const double raw_alpha = base.alpha_scale * lat_corr;
      next.beta_scale =
          std::clamp(raw_beta, options_.min_scale, options_.max_scale);
      next.alpha_scale =
          std::clamp(raw_alpha, options_.min_scale, options_.max_scale);
      next.samples = base.samples + static_cast<std::uint64_t>(e.samples);
      // Detect guard-rail hits against the pre-clamp values directly: a
      // multiply/divide round-trip comparison can misfire on FP rounding.
      if (bw_corr <= 0.0 || next.beta_scale != raw_beta ||
          next.alpha_scale != raw_alpha) {
        ++stats_.clamped;
      }
      updates.emplace_back(key, next);
      // The published scales absorb the drift seen so far; the EWMA starts
      // over so residual error is measured against the *new* model.
      e = Ewma{};
    }
    if (!updates.empty()) ++stats_.publications;
  }
  if (!updates.empty()) store_->publish(updates);
}

RecalibratorStats Recalibrator::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mpath::model
