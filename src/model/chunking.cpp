#include "mpath/model/chunking.hpp"

#include <algorithm>
#include <cmath>

namespace mpath::model {

namespace {

/// The argument X of the square root in Eqs. 14/15, chosen by the
/// bottleneck case, such that k* = sqrt(X).
double sqrt_argument(const PathParams& p, double theta, double n_bytes) {
  if (!p.staged()) return 1.0;
  const double share = theta * n_bytes;
  if (share <= 0.0) return 1.0;
  if (p.first.beta < p.second->beta) {
    // Case 1: first link is the bottleneck (Eq. 14).
    const double denom = p.first.alpha * p.second->beta;
    return denom > 0.0 ? share / denom : 1.0;
  }
  // Case 2: second link is the bottleneck (Eq. 15).
  const double denom = p.first.beta * (p.epsilon + p.second->alpha);
  return denom > 0.0 ? share / denom : 1.0;
}

}  // namespace

double ChunkOptimizer::exact_chunks(const PathParams& p, double theta,
                                    double n_bytes) {
  if (!p.staged()) return 1.0;
  return std::max(1.0, std::sqrt(sqrt_argument(p, theta, n_bytes)));
}

double ChunkOptimizer::linear_chunks(const PathParams& p,
                                     const PhiConstants& phi, double theta,
                                     double n_bytes) {
  if (!p.staged()) return 1.0;
  const double x = sqrt_argument(p, theta, n_bytes);
  const double f = p.first.beta < p.second->beta ? phi.phi1 : phi.phi2;
  return std::max(1.0, f * x);
}

int ChunkOptimizer::clamp_chunks(double k, int max_chunks) {
  const int rounded = static_cast<int>(std::lround(k));
  return std::clamp(rounded, 1, std::max(1, max_chunks));
}

double PhiFitter::fit_over_range(double x_min, double x_max) {
  x_min = std::max(x_min, 1e-12);
  x_max = std::max(x_max, x_min);
  if (x_max - x_min < 1e-9 * x_max) {
    return 1.0 / std::sqrt(0.5 * (x_min + x_max));
  }
  // phi = ∫ x^{3/2} dx / ∫ x^2 dx over [a, b].
  const double num =
      (std::pow(x_max, 2.5) - std::pow(x_min, 2.5)) / 2.5;
  const double den = (std::pow(x_max, 3.0) - std::pow(x_min, 3.0)) / 3.0;
  return num / den;
}

PhiConstants PhiFitter::fit_for_path(const PathParams& p, double n_min,
                                     double n_max, double theta_hint) {
  PhiConstants phi;
  if (!p.staged()) return phi;
  theta_hint = std::clamp(theta_hint, 1e-3, 1.0);
  const double x_lo = sqrt_argument(p, theta_hint, std::min(n_min, n_max));
  const double x_hi = sqrt_argument(p, theta_hint, std::max(n_min, n_max));
  const double fitted = fit_over_range(x_lo, x_hi);
  if (p.first.beta < p.second->beta) {
    phi.phi1 = fitted;
  } else {
    phi.phi2 = fitted;
  }
  return phi;
}

}  // namespace mpath::model
