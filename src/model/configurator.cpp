#include "mpath/model/configurator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "mpath/topo/paths.hpp"
#include "mpath/topo/topology.hpp"

namespace mpath::model {

PathConfigurator::PathConfigurator(const ModelRegistry& registry,
                                   ConfiguratorOptions options)
    : registry_(&registry), options_(options) {}

std::uint64_t PathConfigurator::cache_key(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) const {
  // FNV-1a over the request tuple. The key is a bucket address only:
  // distinct tuples can collide, so lookups must verify the stored tuple
  // (CacheEntry::matches) before trusting the config.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(src);
  mix(dst);
  mix(bytes);
  for (const auto& p : paths) {
    mix(static_cast<std::uint64_t>(p.kind) + 1);
    mix(p.stage);
  }
  if (options_.cache_key_bits < 64) {
    const int bits = std::max(options_.cache_key_bits, 1);
    h &= (1ull << bits) - 1ull;
  }
  return h;
}

const TransferConfig& PathConfigurator::configure(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) {
  if (!paths.empty() && paths.front().kind != topo::PathKind::Direct) {
    throw std::invalid_argument(
        "PathConfigurator: the direct path must be the first candidate");
  }
  return configure_over(src, dst, bytes, paths);
}

const TransferConfig& PathConfigurator::configure_over(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) {
  if (paths.empty()) {
    throw std::invalid_argument("PathConfigurator: no candidate paths");
  }
  if (bytes == 0) {
    throw std::invalid_argument("PathConfigurator: zero-byte transfer");
  }
  const std::uint64_t key = cache_key(src, dst, bytes, paths);
  const std::uint64_t cal_version =
      calibration_ != nullptr ? calibration_->version() : 0;
  if (options_.cache_enabled) {
    if (auto it = cache_.find(key); it != cache_.end()) {
      if (it->second.matches(src, dst, bytes, paths)) {
        if (it->second.cal_version == cal_version) {
          ++cache_hits_;
          // Refresh recency: splice the key to the MRU end without touching
          // the stored config.
          lru_.splice(lru_.begin(), lru_, it->second.recency);
          return it->second.config;
        }
        // Computed under a superseded calibration snapshot: the stored
        // split reflects old alpha/beta. Recompute and replace.
        ++cache_invalidations_;
      } else {
        // A different request tuple hashed onto this key. Fall through to a
        // recompute that replaces the entry — returning the resident config
        // here would hand the caller a plan for someone else's transfer.
        ++cache_collisions_;
      }
    }
  }
  ++cache_misses_;
  CacheEntry fresh;
  fresh.config = compute(src, dst, bytes, paths);
  fresh.src = src;
  fresh.dst = dst;
  fresh.bytes = bytes;
  fresh.paths.assign(paths.begin(), paths.end());
  fresh.cal_version = cal_version;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Replace in place (hash collision or superseded calibration): the key
    // already owns an LRU node, so move that node to the front and keep its
    // iterator across the assignment — the entry's stored recency must
    // never point at another key's node or at end().
    const auto node = it->second.recency;
    lru_.splice(lru_.begin(), lru_, node);
    it->second = std::move(fresh);
    it->second.recency = node;
  } else {
    lru_.push_front(key);
    it = cache_.emplace(key, std::move(fresh)).first;
    it->second.recency = lru_.begin();
  }
  // Bounded cache: drop least-recently-used entries beyond capacity. The
  // entry just inserted is at the front, so with capacity >= 1 the
  // returned reference always survives eviction.
  while (options_.cache_capacity > 0 &&
         cache_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    ++cache_evictions_;
  }
  return it->second.config;
}

std::vector<double> PathConfigurator::shared_edge_derates(
    topo::DeviceId src, topo::DeviceId dst,
    std::span<const topo::PathPlan> paths) const {
  const std::size_t p = paths.size();
  std::vector<double> derates(p, 1.0);
  if (topology_ == nullptr || p < 2) return derates;
  // Resolve every candidate's hop routes once, then count how many DISTINCT
  // candidates use each edge. An edge inside a single path (e.g. the DRAM
  // channel crossed by both hops of a host-staged path) is not shared in
  // this sense — intra-path contention is already the staged composition's
  // job; what per-path composition misses is two candidates streaming
  // concurrently over one link, which max-min arbitration then splits.
  std::vector<std::vector<std::vector<topo::EdgeId>>> routes;
  routes.reserve(p);
  for (const auto& plan : paths) {
    routes.push_back(topo::path_hop_routes(*topology_, src, dst, plan));
  }
  std::map<topo::EdgeId, std::pair<std::size_t, int>> users;  // last path, n
  for (std::size_t i = 0; i < p; ++i) {
    for (const auto& hop : routes[i]) {
      for (const topo::EdgeId e : hop) {
        auto [it, inserted] = users.try_emplace(e, i, 1);
        if (!inserted && it->second.first != i) {
          it->second = {i, it->second.second + 1};
        }
      }
    }
  }
  const std::span<const topo::Edge> edges = topology_->edges();
  for (std::size_t i = 0; i < p; ++i) {
    double solo_bottleneck = 0.0;    // min cap_e, links private
    double shared_bottleneck = 0.0;  // min cap_e / users_e, links split
    bool first = true;
    for (const auto& hop : routes[i]) {
      for (const topo::EdgeId e : hop) {
        const double cap = edges[e].capacity_bps;
        if (cap <= 0.0) continue;
        const double share = cap / static_cast<double>(users.at(e).second);
        if (first) {
          solo_bottleneck = cap;
          shared_bottleneck = share;
          first = false;
        } else {
          solo_bottleneck = std::min(solo_bottleneck, cap);
          shared_bottleneck = std::min(shared_bottleneck, share);
        }
      }
    }
    if (!first && shared_bottleneck < solo_bottleneck) {
      derates[i] = solo_bottleneck / shared_bottleneck;
    }
  }
  return derates;
}

PreparedTransfer PathConfigurator::prepare(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) const {
  const double n = static_cast<double>(bytes);
  const std::size_t p = paths.size();

  PreparedTransfer out;
  // Lines 7-15: resolve link parameters for every candidate path, then
  // overlay any learned per-path calibration. Paths with no snapshot entry
  // are left untouched (no arithmetic at all), so a detached or empty
  // store keeps this bit-identical to the offline-calibrated model.
  // The shared pointer keeps the snapshot alive for the duration of this
  // call even if a publication retires it meanwhile.
  const CalibrationStore::SnapshotPtr snap =
      calibration_ != nullptr ? calibration_->snapshot() : nullptr;
  const CalibrationSnapshot* cal = snap.get();
  out.params.reserve(p);
  for (const auto& plan : paths) {
    PathParams pp = registry_->path_params(src, dst, plan);
    if (cal != nullptr) {
      if (const PathCalibration* c = cal->find(src, dst, plan)) {
        pp.first.alpha *= c->alpha_scale;
        pp.first.beta *= c->beta_scale;
        if (pp.second) {
          pp.second->alpha *= c->alpha_scale;
          pp.second->beta *= c->beta_scale;
        }
      }
    }
    out.params.push_back(std::move(pp));
  }

  // Line 19: topology constants; lines 16-21: per-path (Omega, Delta).
  out.phis.resize(p);
  out.terms.resize(p);
  // Shared-edge composition (requires an attached topology): candidates
  // whose hop routes meet on one fluid edge — a transit-routed direct path
  // and a staged copy crossing the same link of a parallel duplicate pair —
  // each see only their max-min share of that edge, not the full capacity
  // the per-path bottleneck assumes.
  const std::vector<double> derates = shared_edge_derates(src, dst, paths);
  const double theta_hint = 1.0 / static_cast<double>(p);
  for (std::size_t i = 0; i < p; ++i) {
    if (options_.pipelining) {
      const double fit_lo = options_.phi_per_message ? n : options_.phi_fit_n_min;
      const double fit_hi = options_.phi_per_message ? n : options_.phi_fit_n_max;
      out.phis[i] =
          PhiFitter::fit_for_path(out.params[i], fit_lo, fit_hi, theta_hint);
      out.terms[i] = terms_pipelined(out.params[i], out.phis[i]);
    } else {
      out.terms[i] = terms_unpipelined(out.params[i]);
    }
    // Contention-aware extension: derate this path's effective bandwidth
    // by the measured intra-path contention factor (>= 1). Applied only in
    // the large-message regime where the factor was measured.
    if (bytes >= options_.omega_override_min_bytes) {
      if (const auto f = registry_->contention_factor(src, dst, paths[i])) {
        out.terms[i].omega *= *f;
      }
    }
    // Structural (topology-derived) cross-path sharing applies at every
    // message size: the arbitration split exists as soon as both paths
    // stream, unlike the measured large-message contention factors above.
    if (derates[i] > 1.0) {
      out.terms[i].omega *= derates[i];
    }
    // Per-message protocol prefix (rendezvous, ack): paid before any path
    // moves data, so it shifts every path's Delta equally.
    out.terms[i].delta += registry_->protocol_alpha();
    // Line 18: paths are initiated sequentially by the host; later paths
    // inherit the accumulated issue latency of earlier ones.
    if (options_.sequential_initiation) {
      out.terms[i].delta +=
          static_cast<double>(i) * registry_->issue_alpha();
    }
  }
  return out;
}

TransferConfig PathConfigurator::compute(
    topo::DeviceId src, topo::DeviceId dst, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths) const {
  const PreparedTransfer prepared = prepare(src, dst, bytes, paths);
  // Lines 22-26: closed-form theta over the (possibly reduced) active set.
  const ThetaSolution sol =
      ThetaSolver::solve(prepared.terms, static_cast<double>(bytes));
  return config_from_theta(prepared, bytes, paths, sol);
}

TransferConfig PathConfigurator::config_from_theta(
    const PreparedTransfer& prepared, std::uint64_t bytes,
    std::span<const topo::PathPlan> paths, const ThetaSolution& sol) const {
  const double n = static_cast<double>(bytes);
  const std::size_t p = paths.size();
  const std::vector<PathParams>& params = prepared.params;
  const std::vector<PhiConstants>& phis = prepared.phis;
  const std::vector<PathTerms>& terms = prepared.terms;

  TransferConfig config;
  config.total_bytes = bytes;
  config.paths.resize(p);

  // Lines 25 + 27-29: integer byte shares; any rounding remainder goes to
  // the anchor (first) path.
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < p; ++i) {
    PathShare& share = config.paths[i];
    share.plan = paths[i];
    share.terms = terms[i];
    share.theta = sol.theta[i];
    if (i != 0) {
      share.bytes = static_cast<std::uint64_t>(
          std::floor(sol.theta[i] * n));
      assigned += share.bytes;
    }
  }
  config.paths[0].bytes = bytes - assigned;
  // Refresh theta of the direct path after remainder assignment.
  config.paths[0].theta =
      static_cast<double>(config.paths[0].bytes) / n;

  // Chunk counts (line 20) for the final shares.
  for (std::size_t i = 0; i < p; ++i) {
    PathShare& share = config.paths[i];
    if (share.bytes == 0 || !params[i].staged() || !options_.pipelining) {
      share.chunks = 1;
    } else {
      const double k =
          options_.chunk_mode == ChunkMode::ExactSqrt
              ? ChunkOptimizer::exact_chunks(params[i], share.theta, n)
              : ChunkOptimizer::linear_chunks(params[i], phis[i],
                                              share.theta, n);
      share.chunks = ChunkOptimizer::clamp_chunks(k, options_.max_chunks);
    }
    share.predicted_time =
        share.bytes > 0 ? terms[i].time(share.theta, n) : 0.0;
    config.predicted_time =
        std::max(config.predicted_time, share.predicted_time);
  }
  return config;
}

}  // namespace mpath::model
