#include "mpath/model/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace mpath::model {

double prediction_error(double predicted, double observed) {
  if (!(observed > 0.0)) return 0.0;
  return std::fabs(predicted - observed) / observed;
}

double policy_regret(double chosen_bw, double best_bw) {
  if (!(best_bw > 0.0)) return 0.0;
  return std::clamp((best_bw - chosen_bw) / best_bw, 0.0, 1.0);
}

MispredictKind classify(double error, double regret,
                        const AccuracyThresholds& thresholds) {
  const bool e = error > thresholds.max_error;
  const bool r = regret > thresholds.max_regret;
  if (e && r) return MispredictKind::kBoth;
  if (e) return MispredictKind::kError;
  if (r) return MispredictKind::kRegret;
  return MispredictKind::kNone;
}

bool covers(MispredictKind kind, MispredictKind wanted) {
  const auto bits = [](MispredictKind k) {
    switch (k) {
      case MispredictKind::kNone: return 0;
      case MispredictKind::kError: return 1;
      case MispredictKind::kRegret: return 2;
      case MispredictKind::kBoth: return 3;
    }
    return 0;
  };
  return (bits(kind) & bits(wanted)) == bits(wanted);
}

std::string_view to_string(MispredictKind kind) {
  switch (kind) {
    case MispredictKind::kNone: return "none";
    case MispredictKind::kError: return "error";
    case MispredictKind::kRegret: return "regret";
    case MispredictKind::kBoth: return "both";
  }
  return "none";
}

MispredictKind mispredict_kind_from_string(std::string_view s) {
  if (s == "none") return MispredictKind::kNone;
  if (s == "error") return MispredictKind::kError;
  if (s == "regret") return MispredictKind::kRegret;
  if (s == "both") return MispredictKind::kBoth;
  throw std::invalid_argument("unknown mispredict kind: " + std::string(s));
}

}  // namespace mpath::model
