#include "mpath/model/theta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpath::model {

ThetaSolution ThetaSolver::solve(std::span<const PathTerms> paths,
                                 double n_bytes) {
  if (paths.empty()) {
    throw std::invalid_argument("ThetaSolver: no paths");
  }
  if (n_bytes <= 0.0) {
    throw std::invalid_argument("ThetaSolver: message size must be positive");
  }
  for (const PathTerms& p : paths) {
    if (p.omega <= 0.0) {
      throw std::invalid_argument("ThetaSolver: Omega must be positive");
    }
  }

  std::vector<std::size_t> active(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) active[i] = i;

  ThetaSolution sol;
  sol.theta.assign(paths.size(), 0.0);

  while (true) {
    // Closed form Eq. 24 on the active set.
    double inv_sum = 0.0;   // S = sum 1/Omega
    double delta_sum = 0.0; // D = sum Delta/Omega
    for (std::size_t i : active) {
      inv_sum += 1.0 / paths[i].omega;
      delta_sum += paths[i].delta / paths[i].omega;
    }
    double most_negative = 0.0;
    std::size_t drop_pos = active.size();
    for (std::size_t pos = 0; pos < active.size(); ++pos) {
      const std::size_t i = active[pos];
      const double theta_i =
          (1.0 - paths[i].delta / n_bytes * inv_sum + delta_sum / n_bytes) /
          (paths[i].omega * inv_sum);
      sol.theta[i] = theta_i;
      // The direct path (index 0) is never excluded (Algorithm 1).
      if (i != 0 && theta_i < most_negative) {
        most_negative = theta_i;
        drop_pos = pos;
      }
    }
    if (drop_pos == active.size()) break;
    sol.theta[active[drop_pos]] = 0.0;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(drop_pos));
    if (active.size() == 1) {
      // Only the direct path remains.
      std::fill(sol.theta.begin(), sol.theta.end(), 0.0);
      sol.theta[active[0]] = 1.0;
      break;
    }
  }

  // Numerical cleanup: clamp dust, then hand any leftover share to the
  // direct path (index 0) only, per Algorithm 1. Renormalizing *all*
  // shares would scale every staged path's n·θ·Ω term while leaving its Δ
  // fixed, silently moving the solution off the equal-time point whenever
  // clamping removed mass; adjusting only θ₀ keeps the staged shares at
  // their closed-form equal-time values.
  double total = 0.0;
  for (double& t : sol.theta) {
    if (t < 0.0) t = 0.0;
    total += t;
  }
  if (total <= 0.0) {
    sol.theta[0] = 1.0;
  } else if (sol.theta[0] + (1.0 - total) >= 0.0) {
    sol.theta[0] += 1.0 - total;
  } else {
    // Degenerate: the direct path's share cannot absorb the deficit (its
    // own closed-form θ₀ was negative). Fall back to renormalization so
    // the result is at least a valid distribution.
    for (double& t : sol.theta) t /= total;
  }

  sol.active.clear();
  for (std::size_t i = 0; i < sol.theta.size(); ++i) {
    if (sol.theta[i] > 0.0) sol.active.push_back(i);
  }
  sol.predicted_time = evaluate(paths, sol.theta, n_bytes);
  return sol;
}

double ThetaSolver::evaluate(std::span<const PathTerms> paths,
                             std::span<const double> theta, double n_bytes) {
  if (paths.size() != theta.size()) {
    throw std::invalid_argument("ThetaSolver::evaluate: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (theta[i] <= 0.0) continue;  // unused path costs nothing
    worst = std::max(worst, paths[i].time(theta[i], n_bytes));
  }
  return worst;
}

double ThetaSolver::time_spread(std::span<const PathTerms> paths,
                                std::span<const double> theta,
                                double n_bytes) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (theta[i] <= 0.0) continue;
    const double t = paths[i].time(theta[i], n_bytes);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    any = true;
  }
  return any ? hi - lo : 0.0;
}

}  // namespace mpath::model
