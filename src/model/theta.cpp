#include "mpath/model/theta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpath::model {

ThetaSolution ThetaSolver::solve(std::span<const PathTerms> paths,
                                 double n_bytes) {
  if (paths.empty()) {
    throw std::invalid_argument("ThetaSolver: no paths");
  }
  if (n_bytes <= 0.0) {
    throw std::invalid_argument("ThetaSolver: message size must be positive");
  }
  for (const PathTerms& p : paths) {
    if (p.omega <= 0.0) {
      throw std::invalid_argument("ThetaSolver: Omega must be positive");
    }
  }

  std::vector<std::size_t> active(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) active[i] = i;

  ThetaSolution sol;
  sol.theta.assign(paths.size(), 0.0);

  while (true) {
    // Closed form Eq. 24 on the active set.
    double inv_sum = 0.0;   // S = sum 1/Omega
    double delta_sum = 0.0; // D = sum Delta/Omega
    for (std::size_t i : active) {
      inv_sum += 1.0 / paths[i].omega;
      delta_sum += paths[i].delta / paths[i].omega;
    }
    double most_negative = 0.0;
    std::size_t drop_pos = active.size();
    for (std::size_t pos = 0; pos < active.size(); ++pos) {
      const std::size_t i = active[pos];
      const double theta_i =
          (1.0 - paths[i].delta / n_bytes * inv_sum + delta_sum / n_bytes) /
          (paths[i].omega * inv_sum);
      sol.theta[i] = theta_i;
      // The direct path (index 0) is never excluded (Algorithm 1).
      if (i != 0 && theta_i < most_negative) {
        most_negative = theta_i;
        drop_pos = pos;
      }
    }
    if (drop_pos == active.size()) break;
    sol.theta[active[drop_pos]] = 0.0;
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(drop_pos));
    if (active.size() == 1) {
      // Only the direct path remains.
      std::fill(sol.theta.begin(), sol.theta.end(), 0.0);
      sol.theta[active[0]] = 1.0;
      break;
    }
  }

  // Numerical cleanup: clamp dust, then hand any leftover share to the
  // direct path (index 0) only, per Algorithm 1. Renormalizing *all*
  // shares would scale every staged path's n·θ·Ω term while leaving its Δ
  // fixed, silently moving the solution off the equal-time point whenever
  // clamping removed mass; adjusting only θ₀ keeps the staged shares at
  // their closed-form equal-time values.
  double total = 0.0;
  for (double& t : sol.theta) {
    if (t < 0.0) t = 0.0;
    total += t;
  }
  if (total <= 0.0) {
    sol.theta[0] = 1.0;
  } else if (sol.theta[0] + (1.0 - total) >= 0.0) {
    sol.theta[0] += 1.0 - total;
  } else {
    // Degenerate: the direct path's share cannot absorb the deficit (its
    // own closed-form θ₀ was negative). Fall back to renormalization so
    // the result is at least a valid distribution.
    for (double& t : sol.theta) t /= total;
  }

  sol.active.clear();
  for (std::size_t i = 0; i < sol.theta.size(); ++i) {
    if (sol.theta[i] > 0.0) sol.active.push_back(i);
  }
  sol.predicted_time = evaluate(paths, sol.theta, n_bytes);
  return sol;
}

double ThetaSolver::evaluate(std::span<const PathTerms> paths,
                             std::span<const double> theta, double n_bytes) {
  if (paths.size() != theta.size()) {
    throw std::invalid_argument("ThetaSolver::evaluate: size mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (theta[i] <= 0.0) continue;  // unused path costs nothing
    worst = std::max(worst, paths[i].time(theta[i], n_bytes));
  }
  return worst;
}

std::vector<double> JointThetaSolver::maxmin_rates(
    std::span<const FixedFlow> flows, std::span<const JointLink> links) {
  const std::size_t nl = links.size();
  const std::size_t nf = flows.size();
  // Per-flow rate caps are modeled as one private virtual link per flow
  // (capacity = cap, one traversal); the water-fill then only ever reasons
  // about links. Virtual links live at indices [nl, nl + nf).
  std::vector<double> residual(nl + nf);
  std::vector<double> unfrozen(nl + nf, 0.0);
  std::vector<double> background(nl, 0.0);
  for (std::size_t l = 0; l < nl; ++l) {
    if (links[l].capacity_bps <= 0.0) {
      throw std::invalid_argument(
          "JointThetaSolver: link capacity must be positive");
    }
    if (links[l].background_flows < 0.0) {
      throw std::invalid_argument(
          "JointThetaSolver: negative background flows");
    }
    residual[l] = links[l].capacity_bps;
    background[l] = links[l].background_flows;
    unfrozen[l] = background[l];
  }
  for (std::size_t f = 0; f < nf; ++f) {
    if (flows[f].cap_bps <= 0.0) {
      throw std::invalid_argument("JointThetaSolver: flow cap must be positive");
    }
    for (std::uint32_t l : flows[f].links) {
      if (l >= nl) {
        throw std::invalid_argument("JointThetaSolver: link index out of range");
      }
      unfrozen[l] += 1.0;
    }
    residual[nl + f] = flows[f].cap_bps;
    unfrozen[nl + f] = 1.0;
  }

  std::vector<double> rates(nf, 0.0);
  std::vector<char> frozen(nf, 0);
  std::size_t left = nf;
  while (left > 0) {
    // Bottleneck link: smallest fair share, ties to the lowest index (the
    // same scan order as FluidNetwork::reference_rates, so cap-free inputs
    // agree with the fluid oracle bit for bit).
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best = residual.size();
    for (std::size_t l = 0; l < residual.size(); ++l) {
      if (unfrozen[l] <= 0.0) continue;
      const double share = residual[l] / unfrozen[l];
      if (share < best_share) {
        best_share = share;
        best = l;
      }
    }
    if (best == residual.size()) break;  // only frozen weight left
    best_share = std::max(best_share, 0.0);
    for (std::size_t f = 0; f < nf; ++f) {
      if (frozen[f]) continue;
      const bool crosses =
          (best == nl + f) ||
          (best < nl &&
           std::find(flows[f].links.begin(), flows[f].links.end(),
                     static_cast<std::uint32_t>(best)) != flows[f].links.end());
      if (!crosses) continue;
      frozen[f] = 1;
      rates[f] = best_share;
      for (std::uint32_t l : flows[f].links) {
        residual[l] -= best_share;
        unfrozen[l] -= 1.0;
      }
      residual[nl + f] -= best_share;
      unfrozen[nl + f] -= 1.0;
      --left;
    }
    if (best < nl && background[best] > 0.0) {
      // The link's background flows freeze at the same share; they traverse
      // only this link, so their whole footprint settles here.
      residual[best] -= best_share * background[best];
      unfrozen[best] -= background[best];
      background[best] = 0.0;
    }
  }
  return rates;
}

JointSolution JointThetaSolver::solve(std::span<const JointTransfer> transfers,
                                      std::span<const FixedFlow> fixed,
                                      std::span<const JointLink> links) {
  std::size_t total_paths = 0;
  for (const JointTransfer& t : transfers) {
    if (t.paths.empty()) {
      throw std::invalid_argument("JointThetaSolver: transfer with no paths");
    }
    if (t.n_bytes <= 0.0) {
      throw std::invalid_argument(
          "JointThetaSolver: message size must be positive");
    }
    for (const JointPath& p : t.paths) {
      if (p.terms.omega <= 0.0) {
        throw std::invalid_argument("JointThetaSolver: Omega must be positive");
      }
    }
    total_paths += t.paths.size();
  }

  JointSolution sol;
  sol.transfers.resize(transfers.size());
  sol.path_rates.resize(transfers.size());

  // Active set per (transfer, path): starts full, shrinks monotonically as
  // per-transfer solves exclude paths (mirroring Algorithm 1's drop-only
  // exclusion), so the loop converges in at most total_paths + 1 rounds.
  std::vector<util::SmallVec<char, 4>> active(transfers.size());
  for (std::size_t k = 0; k < transfers.size(); ++k) {
    active[k].resize(transfers[k].paths.size());
    for (char& a : active[k]) a = 1;
  }

  std::vector<FixedFlow> flows(fixed.begin(), fixed.end());
  std::vector<PathTerms> reduced;
  std::vector<std::size_t> reduced_idx;
  const int max_rounds = static_cast<int>(total_paths) + 1;
  std::vector<double> rates;
  for (int round = 0; round < max_rounds; ++round) {
    ++sol.iterations;
    // 1. Water-fill: fixed flows first, then every active candidate path
    //    (capped at its solo bandwidth 1/Omega).
    flows.resize(fixed.size());
    for (std::size_t k = 0; k < transfers.size(); ++k) {
      for (std::size_t i = 0; i < transfers[k].paths.size(); ++i) {
        if (!active[k][i]) continue;
        FixedFlow f;
        f.links = transfers[k].paths[i].links;
        f.cap_bps = 1.0 / transfers[k].paths[i].terms.omega;
        flows.push_back(std::move(f));
      }
    }
    rates = maxmin_rates(flows, links);

    // 2. Per-transfer equal-time solve with the water-filled effective
    //    inverse bandwidths.
    bool changed = false;
    std::size_t cursor = fixed.size();
    for (std::size_t k = 0; k < transfers.size(); ++k) {
      const JointTransfer& t = transfers[k];
      reduced.clear();
      reduced_idx.clear();
      sol.path_rates[k].clear();
      sol.path_rates[k].resize(t.paths.size());
      for (std::size_t i = 0; i < t.paths.size(); ++i) {
        if (!active[k][i]) continue;
        const double cap = 1.0 / t.paths[i].terms.omega;
        const double rate = rates[cursor++];
        sol.path_rates[k][i] = rate;
        PathTerms eff = t.paths[i].terms;
        // Uncontended paths keep their solo Omega verbatim (not the
        // double-rounded 1/(1/Omega)), so K=1 reproduces Eq. 24 exactly.
        if (rate < cap && rate > 0.0) eff.omega = 1.0 / rate;
        reduced.push_back(eff);
        reduced_idx.push_back(i);
      }
      const ThetaSolution rsol = ThetaSolver::solve(reduced, t.n_bytes);
      ThetaSolution& out = sol.transfers[k];
      out.theta.assign(t.paths.size(), 0.0);
      out.active.clear();
      out.predicted_time = rsol.predicted_time;
      for (std::size_t j = 0; j < reduced_idx.size(); ++j) {
        const std::size_t i = reduced_idx[j];
        out.theta[i] = rsol.theta[j];
        if (rsol.theta[j] > 0.0) {
          out.active.push_back(i);
        } else if (i != 0 && active[k][i]) {
          // Excluded under contention: the path frees its link shares for
          // everyone else. The anchor (index 0) is never dropped.
          active[k][i] = 0;
          changed = true;
        }
        if (rsol.theta[j] <= 0.0) sol.path_rates[k][i] = 0.0;
      }
    }
    if (!changed) break;
  }
  sol.fixed_rates.assign(rates.begin(),
                         rates.begin() + static_cast<std::ptrdiff_t>(
                                             fixed.size()));
  return sol;
}

JointThetaSolver::RoundValidation JointThetaSolver::validate_round(
    std::span<const FixedFlow> flows, std::span<const JointLink> links,
    double tolerance) {
  RoundValidation out;
  out.rates = maxmin_rates(flows, links);
  out.at_cap = true;
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (out.rates[f] < flows[f].cap_bps * (1.0 - tolerance)) {
      out.at_cap = false;
      break;
    }
  }
  return out;
}

double ThetaSolver::time_spread(std::span<const PathTerms> paths,
                                std::span<const double> theta,
                                double n_bytes) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (theta[i] <= 0.0) continue;
    const double t = paths[i].time(theta[i], n_bytes);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    any = true;
  }
  return any ? hi - lo : 0.0;
}

}  // namespace mpath::model
