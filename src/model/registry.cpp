#include "mpath/model/registry.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "mpath/util/least_squares.hpp"

namespace mpath::model {

void ModelRegistry::set_route_params(topo::DeviceId from, topo::DeviceId to,
                                     LinkParams params) {
  if (params.beta <= 0.0) {
    throw std::invalid_argument("ModelRegistry: beta must be positive");
  }
  routes_[{from, to}] = params;
}

bool ModelRegistry::has_route_params(topo::DeviceId from,
                                     topo::DeviceId to) const {
  return routes_.count({from, to}) != 0;
}

const LinkParams& ModelRegistry::route_params(topo::DeviceId from,
                                              topo::DeviceId to) const {
  auto it = routes_.find({from, to});
  if (it == routes_.end()) {
    throw std::out_of_range("ModelRegistry: no parameters for route " +
                            std::to_string(from) + " -> " +
                            std::to_string(to));
  }
  return it->second;
}

void ModelRegistry::set_epsilon(topo::PathKind kind, double epsilon_s) {
  epsilons_[kind] = epsilon_s;
}

double ModelRegistry::epsilon(topo::PathKind kind) const {
  auto it = epsilons_.find(kind);
  return it == epsilons_.end() ? 0.0 : it->second;
}

PathParams ModelRegistry::path_params(topo::DeviceId src, topo::DeviceId dst,
                                      const topo::PathPlan& plan) const {
  PathParams p;
  p.plan = plan;
  if (plan.kind == topo::PathKind::Direct) {
    p.first = route_params(src, dst);
    return p;
  }
  p.first = route_params(src, plan.stage);
  p.second = route_params(plan.stage, dst);
  p.epsilon = epsilon(plan.kind);
  return p;
}

void ModelRegistry::set_contention_factor(topo::DeviceId src,
                                          topo::DeviceId dst,
                                          const topo::PathPlan& plan,
                                          double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument(
        "ModelRegistry: contention factor must be >= 1");
  }
  contention_factors_[{src, dst, static_cast<int>(plan.kind), plan.stage}] =
      factor;
}

std::optional<double> ModelRegistry::contention_factor(
    topo::DeviceId src, topo::DeviceId dst,
    const topo::PathPlan& plan) const {
  auto it = contention_factors_.find(
      {src, dst, static_cast<int>(plan.kind), plan.stage});
  if (it == contention_factors_.end()) return std::nullopt;
  return it->second;
}

void ModelRegistry::save_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("ModelRegistry: cannot write " + path);
  }
  out << "record,key1,key2,alpha,beta\n";
  out << "system," << system_name_ << ",,,\n";
  out << "issue,,," << issue_alpha_ << ",\n";
  out << "protocol,,," << protocol_alpha_ << ",\n";
  for (const auto& [kind, eps] : epsilons_) {
    out << "epsilon," << std::string(topo::to_string(kind)) << ",," << eps
        << ",\n";
  }
  out.precision(12);
  for (const auto& [key, lp] : routes_) {
    out << "route," << key.first << "," << key.second << "," << lp.alpha
        << "," << lp.beta << "\n";
  }
  for (const auto& [key, factor] : contention_factors_) {
    out << "contention," << std::get<0>(key) << "," << std::get<1>(key)
        << "," << std::get<2>(key) << "|" << std::get<3>(key) << "," << factor
        << "\n";
  }
}

ModelRegistry ModelRegistry::load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ModelRegistry: cannot read " + path);
  }
  ModelRegistry reg;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string record, k1, k2, a, b;
    std::getline(ss, record, ',');
    std::getline(ss, k1, ',');
    std::getline(ss, k2, ',');
    std::getline(ss, a, ',');
    std::getline(ss, b, ',');
    if (record == "system") {
      reg.system_name_ = k1;
    } else if (record == "issue") {
      reg.issue_alpha_ = std::stod(a);
    } else if (record == "protocol") {
      reg.protocol_alpha_ = std::stod(a);
    } else if (record == "epsilon") {
      topo::PathKind kind = topo::PathKind::Direct;
      if (k1 == "gpu-staged") kind = topo::PathKind::GpuStaged;
      else if (k1 == "host-staged") kind = topo::PathKind::HostStaged;
      reg.epsilons_[kind] = std::stod(a);
    } else if (record == "contention") {
      const auto bar = a.find('|');
      reg.contention_factors_[{static_cast<topo::DeviceId>(std::stoul(k1)),
                               static_cast<topo::DeviceId>(std::stoul(k2)),
                               std::stoi(a.substr(0, bar)),
                               static_cast<topo::DeviceId>(
                                   std::stoul(a.substr(bar + 1)))}] =
          std::stod(b);
    } else if (record == "route") {
      reg.routes_[{static_cast<topo::DeviceId>(std::stoul(k1)),
                   static_cast<topo::DeviceId>(std::stoul(k2))}] =
          LinkParams{std::stod(a), std::stod(b)};
    } else {
      throw std::runtime_error("ModelRegistry: bad record '" + record + "'");
    }
  }
  return reg;
}

void HockneyFitter::add_sample(double n_bytes, double seconds) {
  if (n_bytes <= 0.0 || seconds <= 0.0) {
    throw std::invalid_argument("HockneyFitter: samples must be positive");
  }
  ns_.push_back(n_bytes);
  ts_.push_back(seconds);
}

LinkParams HockneyFitter::fit() const {
  const auto line = util::fit_line(ns_, ts_);
  if (line.slope <= 0.0) {
    throw std::runtime_error(
        "HockneyFitter: non-positive slope; samples do not look like a "
        "transfer-time curve");
  }
  LinkParams lp;
  lp.alpha = line.intercept > 0.0 ? line.intercept : 0.0;
  lp.beta = 1.0 / line.slope;
  return lp;
}

}  // namespace mpath::model
