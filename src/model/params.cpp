#include "mpath/model/params.hpp"

#include <cmath>

namespace mpath::model {

PathTerms terms_unpipelined(const PathParams& p) {
  PathTerms t;
  t.omega = 1.0 / p.first.beta;
  t.delta = p.first.alpha;
  if (p.staged()) {
    t.omega += 1.0 / p.second->beta;
    t.delta += p.second->alpha + p.epsilon;
  }
  return t;
}

PathTerms terms_pipelined(const PathParams& p, const PhiConstants& phi) {
  if (!p.staged()) return terms_unpipelined(p);
  if (phi.phi1 <= 0.0 || phi.phi2 <= 0.0) {
    throw std::invalid_argument("terms_pipelined: phi must be positive");
  }
  const double beta = p.first.beta;
  const double beta2 = p.second->beta;
  PathTerms t;
  if (beta < beta2) {
    // Case 1 (Eq. 22 top): the first link is the bottleneck.
    t.omega = 1.0 / beta + phi.phi1 / beta2;
    t.delta = p.epsilon + p.second->alpha + p.first.alpha / phi.phi1;
  } else {
    // Case 2 (Eq. 22 bottom): the second link is the bottleneck.
    t.omega = phi.phi2 / beta + 1.0 / beta2;
    t.delta = p.first.alpha + (p.epsilon + p.second->alpha) / phi.phi2;
  }
  return t;
}

double exact_pipelined_time(const PathParams& p, double theta,
                            double n_bytes) {
  const double share = theta * n_bytes;
  if (!p.staged()) {
    return p.first.alpha + share / p.first.beta;
  }
  const double a = p.first.alpha;
  const double b = p.first.beta;
  const double a2 = p.second->alpha;
  const double b2 = p.second->beta;
  const double eps = p.epsilon;
  if (b < b2) {
    // Eq. 17: T = 2*sqrt(theta*n*alpha/beta') + theta*n/beta + eps + alpha'
    return 2.0 * std::sqrt(share * a / b2) + share / b + eps + a2;
  }
  // Eq. 18: T = 2*sqrt(theta*n*(eps+alpha')/beta) + theta*n/beta' + alpha
  return 2.0 * std::sqrt(share * (eps + a2) / b) + share / b2 + a;
}

}  // namespace mpath::model
