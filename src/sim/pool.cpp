#include "mpath/sim/pool.hpp"

#include <new>
#include <vector>

namespace mpath::sim::detail {

namespace {

// 64-byte size classes up to 8 KiB cover every pooled object in the stack:
// InlineFn event payloads, Latch, ProcState, shared_ptr control blocks, and
// all coroutine frame sizes the pipeline/gpusim layers produce. Anything
// larger is rare enough to pass through.
constexpr std::size_t kGranularity = 64;
constexpr std::size_t kMaxPooled = 8192;
constexpr std::size_t kNumBuckets = kMaxPooled / kGranularity;

#if !defined(MPATH_POOL_PASSTHROUGH)

// Tracks whether the thread-local pool is alive. Frees that arrive during
// thread teardown (static destruction order) fall through to the global
// allocator instead of touching a destroyed pool.
thread_local bool g_pool_alive = false;

struct Pool {
  std::vector<void*> buckets[kNumBuckets];
  PoolCounters counters;

  Pool() { g_pool_alive = true; }
  ~Pool() {
    g_pool_alive = false;
    for (auto& bucket : buckets) {
      for (void* p : bucket) ::operator delete(p);
    }
  }
};

Pool& pool() {
  thread_local Pool p;
  return p;
}

#else

thread_local PoolCounters g_passthrough_counters;

#endif  // MPATH_POOL_PASSTHROUGH

}  // namespace

#if defined(MPATH_POOL_PASSTHROUGH)

void* pool_alloc(std::size_t n) {
  ++g_passthrough_counters.passthrough;
  return ::operator new(n);
}

void pool_free(void* p, std::size_t n) noexcept {
  (void)n;
  ::operator delete(p);
}

PoolCounters pool_counters() noexcept { return g_passthrough_counters; }

#else

void* pool_alloc(std::size_t n) {
  if (n == 0) n = 1;
  if (n > kMaxPooled) {
    ++pool().counters.passthrough;
    return ::operator new(n);
  }
  const std::size_t b = (n - 1) / kGranularity;
  Pool& p = pool();
  ++p.counters.allocs;
  auto& bucket = p.buckets[b];
  if (!bucket.empty()) {
    ++p.counters.hits;
    void* block = bucket.back();
    bucket.pop_back();
    return block;
  }
  return ::operator new((b + 1) * kGranularity);
}

void pool_free(void* p, std::size_t n) noexcept {
  if (n == 0) n = 1;
  if (n > kMaxPooled || !g_pool_alive) {
    ::operator delete(p);
    return;
  }
  pool().buckets[(n - 1) / kGranularity].push_back(p);
}

PoolCounters pool_counters() noexcept {
  return g_pool_alive ? pool().counters : PoolCounters{};
}

#endif  // MPATH_POOL_PASSTHROUGH

}  // namespace mpath::sim::detail
