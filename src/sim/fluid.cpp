#include "mpath/sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "mpath/sim/trace.hpp"
#include "mpath/util/log.hpp"

namespace mpath::sim {

namespace {
// Completion threshold for a flow of `bytes` total: relative so that
// floating-point dust cannot postpone completion forever, with a tiny
// absolute floor so genuinely sub-byte control messages still stream at
// their allocated rate instead of completing instantly at rate 0.
double completion_eps(double bytes) {
  return std::max(1e-12 * bytes, 1e-9);
}
}  // namespace

LinkId FluidNetwork::add_link(LinkSpec spec) {
  if (spec.capacity_bps <= 0.0) {
    throw std::invalid_argument("FluidNetwork: capacity must be positive (" +
                                spec.name + ")");
  }
  if (spec.latency_s < 0.0) {
    throw std::invalid_argument("FluidNetwork: latency must be >= 0 (" +
                                spec.name + ")");
  }
  LinkState ls;
  ls.spec = std::move(spec);
  links_.push_back(std::move(ls));
  return static_cast<LinkId>(links_.size() - 1);
}

const LinkSpec& FluidNetwork::link(LinkId id) const {
  return links_.at(id).spec;
}

void FluidNetwork::set_link_capacity(LinkId id, double bps) {
  if (id >= links_.size()) {
    throw std::out_of_range("FluidNetwork::set_link_capacity: bad LinkId");
  }
  if (bps < 0.0) {
    throw std::invalid_argument(
        "FluidNetwork::set_link_capacity: capacity must be >= 0 (" +
        links_[id].spec.name + ")");
  }
  // Credit bytes streamed at the old rates before the capacity changes,
  // then let the usual dirty-component machinery re-solve: only the
  // component containing this link is touched.
  progress_to_now();
  // Notify before the mutation lands: listeners integrating modeled state
  // (the transfer scheduler) must close their window at the rates that
  // governed it, not retroactively apply the new capacity.
  const double old_bps = links_[id].spec.capacity_bps;
  for (auto& [handle, fn] : capacity_listeners_) fn(id, old_bps, bps);
  links_[id].spec.capacity_bps = bps;
  ++stats_.capacity_changes;
  if (tracer_ != nullptr) {
    tracer_->add_instant("fluid",
                         "set_capacity " + links_[id].spec.name + " " +
                             std::to_string(bps),
                         engine_->now());
  }
  // A capacity change with no flows on the link still updates `allocated`
  // bookkeeping, and zero-capacity links need their flows stalled, so mark
  // dirty unconditionally.
  mark_link_dirty(id);
  request_resolve();
}

std::uint64_t FluidNetwork::add_capacity_listener(CapacityListener fn) {
  const std::uint64_t handle = next_listener_++;
  capacity_listeners_.emplace_back(handle, std::move(fn));
  return handle;
}

bool FluidNetwork::remove_capacity_listener(std::uint64_t handle) {
  for (auto it = capacity_listeners_.begin();
       it != capacity_listeners_.end(); ++it) {
    if (it->first == handle) {
      capacity_listeners_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t FluidNetwork::stalled_flow_count() const {
  std::size_t n = 0;
  for (std::uint32_t slot : active_) {
    if (flows_[slot].stalled) ++n;
  }
  return n;
}

double FluidNetwork::link_allocated_rate(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("bad LinkId");
  // A same-time resolve may still be pending (coalescing); settle it now so
  // queries always observe max-min rates. The deferred pass then finds an
  // empty dirty set and only re-arms the completion timer.
  if (!dirty_links_.empty()) {
    const_cast<FluidNetwork*>(this)->resolve_dirty();
  }
  return links_[id].allocated;
}

double FluidNetwork::link_bytes_transferred(LinkId id) const {
  return links_.at(id).bytes_transferred;
}

double FluidNetwork::link_flow_weight(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("bad LinkId");
  double weight = 0.0;
  for (const LinkEntry& e : links_[id].entries) weight += e.mult;
  return weight;
}

void FluidNetwork::progress_to_now() {
  const Time now = engine_->now();
  const double dt = now - last_progress_;
  last_progress_ = now;
  if (dt <= 0.0) return;
  for (std::uint32_t slot : active_) {
    Flow& f = flows_[slot];
    const double delivered = std::min(f.remaining, f.rate * dt);
    if (delivered <= 0.0) continue;
    f.remaining -= delivered;
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      links_[f.links[i]].bytes_transferred += delivered * f.mult[i];
    }
  }
}

void FluidNetwork::mark_link_dirty(LinkId l) {
  LinkState& ls = links_[l];
  if (ls.dirty_mark == dirty_epoch_) return;
  ls.dirty_mark = dirty_epoch_;
  dirty_links_.push_back(l);
}

void FluidNetwork::request_resolve() {
  ++stats_.resolve_requests;
  if (mode_ == SolverMode::kFull) {
    // Legacy behaviour: eagerly re-solve the whole network on every event.
    for (LinkId l = 0; l < static_cast<LinkId>(links_.size()); ++l) {
      mark_link_dirty(l);
    }
    resolve_and_reschedule();
    return;
  }
  if (resolve_pending_) {
    ++stats_.coalesced;
    return;
  }
  resolve_pending_ = true;
  engine_->defer([this] {
    resolve_pending_ = false;
    resolve_and_reschedule();
  });
}

void FluidNetwork::resolve_and_reschedule() {
  progress_to_now();
  resolve_dirty();
  schedule_next_completion();
}

void FluidNetwork::resolve_dirty() {
  if (dirty_links_.empty()) return;
  ++stats_.resolves;
  ++visit_epoch_;

  // Gather the connected component of the flow/link sharing graph that is
  // reachable from the dirty links. Rates outside it cannot change: a flow
  // not sharing (transitively) any link with a changed one keeps its
  // allocation, so the water-filling below touches only the component.
  comp_links_.clear();
  comp_flows_.clear();
  for (LinkId l : dirty_links_) {
    if (links_[l].visit_mark == visit_epoch_) continue;
    links_[l].visit_mark = visit_epoch_;
    comp_links_.push_back(l);
  }
  for (std::size_t qi = 0; qi < comp_links_.size(); ++qi) {
    for (const LinkEntry& e : links_[comp_links_[qi]].entries) {
      Flow& f = flows_[e.flow];
      if (f.visit_mark == visit_epoch_) continue;
      f.visit_mark = visit_epoch_;
      comp_flows_.push_back(e.flow);
      for (LinkId l : f.links) {
        if (links_[l].visit_mark == visit_epoch_) continue;
        links_[l].visit_mark = visit_epoch_;
        comp_links_.push_back(l);
      }
    }
  }

  // Water-filling max-min fairness restricted to the component. A route may
  // traverse a link multiple times; each traversal consumes one share of
  // that link (mult), but the flow's rate is the single bottleneck share.
  for (LinkId l : comp_links_) {
    LinkState& ls = links_[l];
    ls.residual = ls.spec.capacity_bps;
    ls.unfrozen_mult = 0.0;
  }
  for (std::uint32_t slot : comp_flows_) {
    Flow& f = flows_[slot];
    f.rate = 0.0;
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      links_[f.links[i]].unfrozen_mult += f.mult[i];
    }
  }
  // Bottleneck selection runs over a min-heap keyed by (fair share, LinkId)
  // instead of rescanning every component link per round, so a component of
  // n links water-fills in O(n log n) rather than O(n^2). Keys are lazily
  // invalidated: freezing a bottleneck's flows at share s can only *raise*
  // a surviving link's share ((r - s*m) / (u - m) >= r/u whenever
  // s <= r/u), so a popped entry whose stored key is below the link's
  // current share is stale — re-queue it under the fresh key and pop again.
  // The LinkId tie-break freezes equal-share bottlenecks in the same
  // ascending order as the kFull oracle's linear scan, keeping freeze order
  // (and therefore floating-point rate arithmetic) aligned across modes.
  const auto heap_later = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.share != b.share) return a.share > b.share;
    return a.link > b.link;
  };
  heap_.clear();
  for (LinkId l : comp_links_) {
    const LinkState& ls = links_[l];
    if (ls.unfrozen_mult <= 0.0) continue;
    heap_.push_back(HeapEntry{ls.residual / ls.unfrozen_mult, l});
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_later);
  stats_.heap_pushes += heap_.size();
  std::size_t unfrozen = comp_flows_.size();
  while (unfrozen > 0) {
    if (heap_.empty()) {
      throw std::logic_error(
          "FluidNetwork: water-filling found no bottleneck for " +
          std::to_string(unfrozen) + " unfrozen flow(s)");
    }
    std::pop_heap(heap_.begin(), heap_.end(), heap_later);
    const HeapEntry top = heap_.back();
    heap_.pop_back();
    LinkState& bls = links_[top.link];
    if (bls.unfrozen_mult <= 0.0) continue;  // fully frozen since pushed
    const double best_share = bls.residual / bls.unfrozen_mult;
    if (best_share > top.share) {
      heap_.push_back(HeapEntry{best_share, top.link});
      std::push_heap(heap_.begin(), heap_.end(), heap_later);
      ++stats_.heap_pushes;
      ++stats_.heap_reinserts;
      continue;
    }
    // Freeze every unfrozen flow through the bottleneck at its fair share.
    for (const LinkEntry& e : bls.entries) {
      Flow& f = flows_[e.flow];
      if (f.frozen_mark == visit_epoch_) continue;
      f.frozen_mark = visit_epoch_;
      f.rate = best_share;
      // A zero-capacity (severed) bottleneck freezes its flows at rate 0;
      // they stay live but stalled until the link is restored or they are
      // cancelled, and must not participate in completion scheduling.
      f.stalled = best_share <= 0.0;
      for (std::size_t i = 0; i < f.links.size(); ++i) {
        LinkState& ls = links_[f.links[i]];
        ls.residual -= best_share * f.mult[i];
        ls.unfrozen_mult -= f.mult[i];
      }
      --unfrozen;
    }
  }
  for (LinkId l : comp_links_) {
    LinkState& ls = links_[l];
    ls.allocated = std::max(0.0, ls.spec.capacity_bps - ls.residual);
  }

  stats_.flows_resolved += comp_flows_.size();
  stats_.links_resolved += comp_links_.size();
  if (comp_links_.size() == links_.size()) ++stats_.full_resolves;
  dirty_links_.clear();
  ++dirty_epoch_;

  if (tracer_ != nullptr) {
    const Time now = engine_->now();
    tracer_->add_counter("fluid", "rate_resolves", now,
                         static_cast<double>(stats_.resolves));
    tracer_->add_counter("fluid", "resolved_flows", now,
                         static_cast<double>(comp_flows_.size()));
  }
  if (self_check_) run_self_check();
}

std::vector<double> FluidNetwork::reference_rates() const {
  // The original whole-network water-filling solver, kept verbatim as an
  // oracle: O(links * iterations + flows * route) per call, no reuse.
  const std::size_t nflows = active_.size();
  std::vector<double> rates(nflows, 0.0);
  std::vector<char> frozen(nflows, 0);
  std::vector<double> residual(links_.size());
  std::vector<double> unfrozen_mult(links_.size(), 0.0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].spec.capacity_bps;
  }
  for (std::uint32_t slot : active_) {
    const Flow& f = flows_[slot];
    for (std::size_t i = 0; i < f.links.size(); ++i) {
      unfrozen_mult[f.links[i]] += f.mult[i];
    }
  }
  std::size_t left = nflows;
  while (left > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best = links_.size();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (unfrozen_mult[l] <= 0.0) continue;
      const double share = residual[l] / unfrozen_mult[l];
      if (share < best_share) {
        best_share = share;
        best = l;
      }
    }
    assert(best < links_.size() && "unfrozen flow with no links");
    for (std::size_t i = 0; i < nflows; ++i) {
      if (frozen[i]) continue;
      const Flow& f = flows_[active_[i]];
      const auto it = std::find(f.links.begin(), f.links.end(),
                                static_cast<LinkId>(best));
      if (it == f.links.end()) continue;
      frozen[i] = 1;
      rates[i] = best_share;
      for (std::size_t j = 0; j < f.links.size(); ++j) {
        residual[f.links[j]] -= best_share * f.mult[j];
        unfrozen_mult[f.links[j]] -= f.mult[j];
      }
      --left;
    }
  }
  return rates;
}

void FluidNetwork::run_self_check() const {
  const std::vector<double> ref = reference_rates();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const Flow& f = flows_[active_[i]];
    const double tol = 1e-9 * std::max(1.0, std::abs(ref[i]));
    if (std::abs(f.rate - ref[i]) > tol) {
      throw std::logic_error(
          "FluidNetwork self-check: incremental rate " +
          std::to_string(f.rate) + " != reference " + std::to_string(ref[i]) +
          " for flow slot " + std::to_string(active_[i]) + " at t=" +
          std::to_string(engine_->now()));
    }
  }
}

void FluidNetwork::schedule_next_completion() {
  if (active_.empty()) return;
  double min_dt = std::numeric_limits<double>::infinity();
  for (std::uint32_t slot : active_) {
    const Flow& f = flows_[slot];
    if (f.stalled && f.rate <= 0.0) continue;  // waits for restore or cancel
    if (f.rate <= 0.0) {
      // Rates are always re-solved before this point; a live flow with no
      // rate means the solver regressed. Fail loudly instead of leaving the
      // flow stranded with no future event (which would present as a
      // silent hang or an engine deadlock far from the root cause).
      MPATH_ERROR << "FluidNetwork: active flow (slot " << slot << ", "
                  << f.remaining << " B remaining) has rate " << f.rate
                  << " at t=" << engine_->now();
      throw SimError("FluidNetwork: active flow with non-positive rate at t=" +
                     std::to_string(engine_->now()));
    }
    min_dt = std::min(min_dt, std::max(0.0, f.remaining) / f.rate);
  }
  if (!std::isfinite(min_dt)) return;  // every live flow is stalled
  const std::uint64_t gen = ++timer_generation_;
  engine_->schedule_callback(engine_->now() + min_dt,
                             [this, gen] { on_completion_timer(gen); });
}

void FluidNetwork::on_completion_timer(std::uint64_t generation) {
  if (generation != timer_generation_) {
    ++stats_.timers_stale;  // superseded by a newer event
    return;
  }
  ++stats_.timers_fired;
  progress_to_now();
  bool any_completed = false;
  // A flow is complete when its remaining bytes fall below its relative
  // epsilon, or when they would stream in less than ~2 ulps of the clock —
  // otherwise the next timer could round to the current timestamp, deliver
  // nothing, and re-arm forever without advancing time.
  const double time_quantum = 4.5e-16 * std::abs(engine_->now());
  // Detach mutates active_, so collect first (into member scratch — this
  // runs once per completion timestamp and must not allocate in steady
  // state). All completions that land on this timestamp drain in this one
  // pass and share one rate re-solve.
  completed_scratch_.clear();
  for (std::uint32_t slot : active_) {
    const Flow& f = flows_[slot];
    if (f.remaining <= f.done_eps + f.rate * time_quantum) {
      completed_scratch_.push_back(slot);
    }
  }
  for (std::uint32_t slot : completed_scratch_) {
    Flow& f = flows_[slot];
    if (f.done) f.done->fire();
    detach_flow(slot);  // marks the flow's links dirty
    any_completed = true;
  }
  if (any_completed) {
    request_resolve();
  } else if (!resolve_pending_) {
    // Defensive re-arm: rounding pushed the nearest completion past this
    // timer. Rates are unchanged, so just schedule the next event.
    schedule_next_completion();
  }
}

void FluidNetwork::detach_flow(std::uint32_t slot) {
  Flow& f = flows_[slot];
  assert(f.live);
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    const LinkId l = f.links[i];
    mark_link_dirty(l);
    auto& entries = links_[l].entries;
    const std::uint32_t p = f.pos[i];
    assert(p < entries.size() && entries[p].flow == slot);
    entries[p] = entries.back();
    entries.pop_back();
    if (p < entries.size()) {
      // Fix the moved entry's back-pointer.
      Flow& moved = flows_[entries[p].flow];
      for (std::size_t j = 0; j < moved.links.size(); ++j) {
        if (moved.links[j] == l) {
          moved.pos[j] = p;
          break;
        }
      }
    }
  }
  // Swap-remove from the dense active list.
  const std::uint32_t ap = f.active_pos;
  active_[ap] = active_.back();
  active_.pop_back();
  if (ap < active_.size()) flows_[active_[ap]].active_pos = ap;
  f.live = false;
  f.rate = 0.0;
  f.done.reset();
  ++f.gen;  // invalidate outstanding FlowIds
  free_slots_.push_back(slot);
}

std::uint32_t FluidNetwork::allocate_flow(std::span<const LinkId> route,
                                          double bytes, Latch* done) {
  std::unique_ptr<Latch> owned(done);
  for (LinkId l : route) {
    if (l >= links_.size()) {
      throw std::invalid_argument("FluidNetwork: bad LinkId in route");
    }
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    flows_.emplace_back();
    slot = static_cast<std::uint32_t>(flows_.size() - 1);
  }
  Flow& f = flows_[slot];
  f.links.clear();
  f.mult.clear();
  f.pos.clear();
  for (LinkId l : route) {  // routes are short; quadratic dedup is fine
    const auto it = std::find(f.links.begin(), f.links.end(), l);
    if (it == f.links.end()) {
      f.links.push_back(l);
      f.mult.push_back(1.0);
    } else {
      f.mult[static_cast<std::size_t>(it - f.links.begin())] += 1.0;
    }
  }
  f.remaining = bytes;
  f.bytes_total = bytes;
  f.done_eps = completion_eps(bytes);
  f.rate = 0.0;
  f.stalled = false;
  f.done = std::move(owned);
  f.live = true;
  f.active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(slot);
  f.pos.resize(f.links.size());
  for (std::size_t i = 0; i < f.links.size(); ++i) {
    auto& entries = links_[f.links[i]].entries;
    f.pos[i] = static_cast<std::uint32_t>(entries.size());
    entries.push_back(LinkEntry{slot, f.mult[i]});
  }
  return slot;
}

FlowId FluidNetwork::start_flow(std::span<const LinkId> route, double bytes,
                                Latch* done) {
  if (route.empty() || bytes <= 0.0) {
    std::unique_ptr<Latch> owned(done);
    throw std::invalid_argument(
        "FluidNetwork::start_flow: route must be non-empty and bytes > 0");
  }
  progress_to_now();
  const std::uint32_t slot = allocate_flow(route, bytes, done);
  for (LinkId l : flows_[slot].links) mark_link_dirty(l);
  request_resolve();
  return (static_cast<FlowId>(flows_[slot].gen) << 32) |
         static_cast<FlowId>(slot + 1);
}

bool FluidNetwork::cancel_flow(FlowId id) {
  if (id == kInvalidFlow) return false;
  const std::uint64_t low = id & 0xffffffffull;
  if (low == 0 || low > flows_.size()) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(low - 1);
  Flow& f = flows_[slot];
  if (!f.live || f.gen != static_cast<std::uint32_t>(id >> 32)) return false;
  progress_to_now();  // account bytes delivered up to the cancel point
  ++stats_.cancelled_flows;
  if (tracer_ != nullptr) {
    const Time now = engine_->now();
    tracer_->add_instant("fluid", "cancel_flow slot=" + std::to_string(slot),
                         now);
    tracer_->add_counter("fluid", "cancelled_flows", now,
                         static_cast<double>(stats_.cancelled_flows));
  }
  if (f.done) f.done->fire();
  detach_flow(slot);  // marks the flow's links dirty
  request_resolve();
  return true;
}

Task<void> FluidNetwork::transfer(Route route, double bytes) {
  double latency = 0.0;
  for (LinkId l : route) {
    latency += links_.at(l).spec.latency_s;
  }
  if (latency > 0.0) co_await engine_->delay(latency);
  if (bytes <= 0.0 || route.empty()) co_return;
  // The Latch must outlive this coroutine frame's suspension: ownership is
  // transferred to the Flow, which the network destroys after firing it.
  // Latch::operator new recycles through the simulator pool.
  auto latch = std::make_unique<Latch>(*engine_);
  Latch* lp = latch.get();
  (void)start_flow(route, bytes, latch.release());
  co_await lp->wait();
}

}  // namespace mpath::sim
