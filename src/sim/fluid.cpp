#include "mpath/sim/fluid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mpath::sim {

namespace {
// Flows whose remaining volume drops below this many bytes are complete;
// guards against floating-point dust postponing completion events forever.
constexpr double kRemainingEps = 1e-3;
}  // namespace

LinkId FluidNetwork::add_link(LinkSpec spec) {
  if (spec.capacity_bps <= 0.0) {
    throw std::invalid_argument("FluidNetwork: capacity must be positive (" +
                                spec.name + ")");
  }
  if (spec.latency_s < 0.0) {
    throw std::invalid_argument("FluidNetwork: latency must be >= 0 (" +
                                spec.name + ")");
  }
  links_.push_back(LinkState{std::move(spec), 0.0});
  return static_cast<LinkId>(links_.size() - 1);
}

const LinkSpec& FluidNetwork::link(LinkId id) const {
  return links_.at(id).spec;
}

double FluidNetwork::link_allocated_rate(LinkId id) const {
  if (id >= links_.size()) throw std::out_of_range("bad LinkId");
  double rate = 0.0;
  for (const Flow& f : flows_) {
    for (LinkId l : f.route) {
      if (l == id) rate += f.rate;
    }
  }
  return rate;
}

double FluidNetwork::link_bytes_transferred(LinkId id) const {
  return links_.at(id).bytes_transferred;
}

void FluidNetwork::progress_to_now() {
  const Time now = engine_->now();
  const double dt = now - last_progress_;
  last_progress_ = now;
  if (dt <= 0.0) return;
  for (Flow& f : flows_) {
    const double delivered = std::min(f.remaining, f.rate * dt);
    f.remaining -= delivered;
    for (LinkId l : f.route) {
      links_[l].bytes_transferred += delivered;
    }
  }
}

void FluidNetwork::recompute_rates() {
  // Water-filling max-min fairness. A route may traverse a link multiple
  // times; each traversal consumes one share of that link.
  const std::size_t nlinks = links_.size();
  std::vector<double> residual(nlinks);
  std::vector<double> unfrozen_mult(nlinks, 0.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    residual[l] = links_[l].spec.capacity_bps;
  }
  std::vector<Flow*> unfrozen;
  for (Flow& f : flows_) {
    f.rate = 0.0;
    unfrozen.push_back(&f);
    for (LinkId l : f.route) unfrozen_mult[l] += 1.0;
  }

  while (!unfrozen.empty()) {
    // Find the bottleneck link: the one offering the smallest fair share.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = nlinks;
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (unfrozen_mult[l] <= 0.0) continue;
      const double share = residual[l] / unfrozen_mult[l];
      if (share < best_share) {
        best_share = share;
        best_link = l;
      }
    }
    assert(best_link < nlinks && "unfrozen flow with no links");
    // Freeze every unfrozen flow that traverses the bottleneck link.
    std::vector<Flow*> still_unfrozen;
    still_unfrozen.reserve(unfrozen.size());
    for (Flow* f : unfrozen) {
      const bool through =
          std::find(f->route.begin(), f->route.end(),
                    static_cast<LinkId>(best_link)) != f->route.end();
      if (!through) {
        still_unfrozen.push_back(f);
        continue;
      }
      f->rate = best_share;
      for (LinkId l : f->route) {
        residual[l] -= best_share;
        unfrozen_mult[l] -= 1.0;
      }
    }
    unfrozen.swap(still_unfrozen);
  }
}

void FluidNetwork::schedule_next_completion() {
  if (flows_.empty()) return;
  double min_dt = std::numeric_limits<double>::infinity();
  for (const Flow& f : flows_) {
    if (f.rate > 0.0) {
      min_dt = std::min(min_dt, std::max(0.0, f.remaining) / f.rate);
    }
  }
  if (!std::isfinite(min_dt)) return;  // nothing can progress (shouldn't happen)
  const std::uint64_t gen = ++timer_generation_;
  engine_->schedule_callback(engine_->now() + min_dt,
                             [this, gen] { on_completion_timer(gen); });
}

void FluidNetwork::on_completion_timer(std::uint64_t generation) {
  if (generation != timer_generation_) return;  // superseded by a newer event
  progress_to_now();
  bool any_completed = false;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->remaining <= kRemainingEps) {
      it->done->fire();
      it = flows_.erase(it);
      any_completed = true;
    } else {
      ++it;
    }
  }
  if (any_completed) recompute_rates();
  schedule_next_completion();
}

void FluidNetwork::begin_flow(std::vector<LinkId> route, double bytes,
                              Latch* done) {
  progress_to_now();
  Flow f;
  f.route = std::move(route);
  f.remaining = bytes;
  f.done.reset(done);
  flows_.push_back(std::move(f));
  recompute_rates();
  schedule_next_completion();
}

Task<void> FluidNetwork::transfer(std::vector<LinkId> route, double bytes) {
  double latency = 0.0;
  for (LinkId l : route) {
    latency += links_.at(l).spec.latency_s;
  }
  if (latency > 0.0) co_await engine_->delay(latency);
  if (bytes <= 0.0 || route.empty()) co_return;
  // The Latch must outlive this coroutine frame's suspension: ownership is
  // transferred to the Flow, which the network destroys after firing it.
  auto latch = std::make_unique<Latch>(*engine_);
  Latch* lp = latch.get();
  begin_flow(std::move(route), bytes, latch.release());
  co_await lp->wait();
}

}  // namespace mpath::sim
