#include "mpath/sim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace mpath::sim {

void Tracer::add_span(std::string track, std::string name, double t0,
                      double t1) {
  if (t1 < t0) {
    throw std::invalid_argument("Tracer::add_span: t1 < t0");
  }
  spans_.push_back(Span{std::move(track), std::move(name), t0, t1});
}

void Tracer::add_instant(std::string track, std::string name, double t) {
  instants_.push_back(Instant{std::move(track), std::move(name), t});
}

void Tracer::add_counter(std::string track, std::string name, double t,
                         double value) {
  counters_.push_back(Counter{std::move(track), std::move(name), t, value});
}

void Tracer::clear() {
  spans_.clear();
  instants_.clear();
  counters_.clear();
}

namespace {
/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string Tracer::chrome_trace_json() const {
  // Assign dense thread ids by first appearance, and emit metadata rows so
  // viewers show the track names.
  std::map<std::string, std::uint32_t> tracks;
  auto tid = [&tracks](const std::string& t) {
    auto it = tracks.find(t);
    if (it == tracks.end()) {
      it = tracks.emplace(t, static_cast<std::uint32_t>(tracks.size())).first;
    }
    return it->second;
  };

  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const Span& s : spans_) {
    sep();
    out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << tid(s.track) << ",\"ts\":"
        << s.t0 * 1e6 << ",\"dur\":" << (s.t1 - s.t0) * 1e6 << ",\"name\":\""
        << json_escape(s.name) << "\"}";
  }
  for (const Instant& i : instants_) {
    sep();
    out << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid(i.track)
        << ",\"ts\":" << i.t * 1e6 << ",\"name\":\"" << json_escape(i.name)
        << "\"}";
  }
  for (const Counter& c : counters_) {
    sep();
    out << "{\"ph\":\"C\",\"pid\":1,\"tid\":" << tid(c.track) << ",\"ts\":"
        << c.t * 1e6 << ",\"name\":\"" << json_escape(c.name)
        << "\",\"args\":{\"value\":" << c.value << "}}";
  }
  for (const auto& [name, id] : tracks) {
    sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << id
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << json_escape(name) << "\"}}";
  }
  out << "]}";
  return out.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("Tracer: cannot write " + path);
  }
  out << chrome_trace_json();
}

}  // namespace mpath::sim
