#include "mpath/sim/engine.hpp"

#include <algorithm>
#include <cassert>

#include "mpath/util/log.hpp"

namespace mpath::sim {

void Latch::fire() {
  if (fired_) return;
  fired_ = true;
  // Resume via the event queue (at the current time) rather than inline, so
  // that firing a latch from deep inside another coroutine cannot reenter
  // arbitrary user state.
  if (waiters_.empty()) return;
  if (waiters_.size() == 1) {
    engine_->schedule_handle(engine_->now(), waiters_.front());
  } else {
    // Batch multi-waiter wakeups into one queue event. Scheduling the
    // waiters individually would hand them consecutive sequence numbers, so
    // nothing could interleave between their resumptions anyway — resuming
    // them back-to-back from a single event is observably identical while
    // costing one queue operation instead of k.
    engine_->schedule_callback(engine_->now(),
                               [ws = std::move(waiters_)]() {
                                 for (auto h : ws) h.resume();
                               });
  }
  waiters_.clear();
}

Engine::~Engine() {
  // Destroy any still-suspended root frames. Their Task destructors handle
  // frame destruction; the queue may still hold handles into those frames,
  // but it is destroyed without resuming anything.
  while (!queue_.empty()) queue_.pop();
}

void Engine::schedule_handle(Time t, std::coroutine_handle<> h) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, h, nullptr});
}

void Engine::schedule_callback(Time t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t < now_ ? now_ : t, next_seq_++, nullptr, std::move(fn)});
}

void Engine::defer(std::function<void()> fn) {
  // Monotone sequence numbers order same-time events FIFO, so this runs
  // after everything already queued at now() and before later arrivals.
  queue_.push(Event{now_, next_seq_++, nullptr, std::move(fn)});
}

namespace {
Task<void> run_root(Task<void> inner,
                    std::shared_ptr<detail::ProcState> state) {
  try {
    co_await std::move(inner);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done.fire();
}
}  // namespace

Process Engine::spawn(Task<void> task, std::string name) {
  // Amortized reclamation: sweeping on a doubling watermark keeps spawn
  // O(1) amortized even when millions of short-lived processes are created
  // (every GPU stream operation is one).
  if (roots_.size() >= sweep_watermark_) {
    sweep_completed_roots();
    sweep_watermark_ = std::max<std::size_t>(1024, 2 * roots_.size());
  }
  auto state = std::make_shared<detail::ProcState>(*this);
  Task<void> root = run_root(std::move(task), state);
  const auto handle = root.raw_handle();
  roots_.push_back(Root{std::move(root), state, std::move(name)});
  ++live_roots_;
  schedule_handle(now_, handle);
  return Process(std::move(state));
}

void Engine::sweep_completed_roots() {
  std::erase_if(roots_, [](const Root& r) {
    if (!r.task.done()) return false;
    // Keep unobserved failures so run() can report them.
    return !(r.state->exception && !r.state->observed);
  });
  std::size_t live = 0;
  for (const Root& r : roots_) {
    if (!r.task.done()) ++live;
  }
  live_roots_ = live;
}

void Engine::check_quiescence() const {
  std::size_t blocked = 0;
  std::string first_name;
  for (const Root& r : roots_) {
    if (!r.task.done()) {
      ++blocked;
      if (first_name.empty()) first_name = r.name.empty() ? "<anon>" : r.name;
    }
  }
  if (blocked > 0) {
    throw SimError("simulation deadlock: " + std::to_string(blocked) +
                   " process(es) still blocked at t=" + std::to_string(now_) +
                   " (first: " + first_name + ")");
  }
  for (const Root& r : roots_) {
    if (r.state->exception && !r.state->observed) {
      std::string name = r.name.empty() ? "<anon>" : r.name;
      try {
        std::rethrow_exception(r.state->exception);
      } catch (const std::exception& e) {
        throw SimError("unjoined process '" + name + "' failed: " + e.what());
      } catch (...) {
        throw SimError("unjoined process '" + name +
                       "' failed with a non-std exception");
      }
    }
  }
}

std::uint64_t Engine::run_impl(Time t_limit, bool bounded) {
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    if (bounded && queue_.top().t > t_limit) {
      now_ = t_limit;
      return processed;
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    if (ev.handle) {
      ev.handle.resume();
    } else {
      ev.callback();
    }
    ++processed;
  }
  sweep_completed_roots();
  check_quiescence();
  roots_.clear();
  return processed;
}

std::uint64_t Engine::run() {
  return run_impl(0.0, /*bounded=*/false);
}

std::uint64_t Engine::run_until(Time t_limit) {
  return run_impl(t_limit, /*bounded=*/true);
}

Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks) {
  std::vector<Process> procs;
  procs.reserve(tasks.size());
  for (auto& t : tasks) {
    procs.push_back(engine.spawn(std::move(t)));
  }
  std::exception_ptr first_error;
  for (auto& p : procs) {
    try {
      co_await p.join();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mpath::sim
