#include "mpath/sim/engine.hpp"

#include <algorithm>
#include <cassert>

#include "mpath/sim/trace.hpp"
#include "mpath/util/log.hpp"

namespace mpath::sim {

void Latch::fire() {
  if (fired_) return;
  fired_ = true;
  // Resume via the event queue (at the current time) rather than inline, so
  // that firing a latch from deep inside another coroutine cannot reenter
  // arbitrary user state.
  Awaiter* head = head_;
  head_ = nullptr;
  tail_ = nullptr;
  if (head == nullptr) return;
  if (head->next == nullptr) {
    engine_->schedule_handle(engine_->now(), head->handle);
    return;
  }
  // Batch multi-waiter wakeups into one queue event. Scheduling the
  // waiters individually would hand them consecutive sequence numbers, so
  // nothing could interleave between their resumptions anyway — resuming
  // them back-to-back from a single event is observably identical while
  // costing one queue operation instead of k. The chain nodes are the
  // suspended awaiters themselves, so read `next` before resuming: resume
  // may destroy the node's coroutine frame.
  engine_->schedule_callback(engine_->now(), [head]() {
    Awaiter* p = head;
    while (p != nullptr) {
      Awaiter* n = p->next;
      p->handle.resume();
      p = n;
    }
  });
}

Engine::~Engine() {
  // Destroy any still-suspended root frames. Their Task destructors handle
  // frame destruction; the queue may still hold handles into those frames,
  // but it is destroyed without resuming anything.
  heap_.clear();
  slots_.clear();
  roots_.clear();
  if (proc_slab_ != nullptr) {
    // Process handles may outlive the engine; the last one frees the slab.
    if (proc_slab_->checked_out == 0) {
      delete proc_slab_;
    } else {
      proc_slab_->orphaned = true;
    }
  }
}

void Engine::push_event(Time t, std::coroutine_handle<> h, EventFn fn) {
  MPATH_ASSERT_OWNER(owner_, "sim::Engine (event scheduling)");
  assert(t >= now_ && "cannot schedule in the past");
  if (t < now_) t = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].handle = h;
    slots_[slot].callback = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    if (slot > kSlotMask) {
      throw SimError("Engine: event payload slots exhausted (2^24 in flight)");
    }
    slots_.push_back(EventSlot{h, std::move(fn)});
  }
  const std::uint64_t seq = next_seq_++;
  if (seq >= (1ull << (64 - kSlotBits))) {
    throw SimError("Engine: event sequence numbers exhausted");
  }
  heap_.push_back(HeapEntry{t, (seq << kSlotBits) | slot});
  std::push_heap(heap_.begin(), heap_.end(), EventLater{});
}

void Engine::schedule_handle(Time t, std::coroutine_handle<> h) {
  push_event(t, h, EventFn{});
}

void Engine::schedule_callback(Time t, EventFn fn) {
  push_event(t, nullptr, std::move(fn));
}

void Engine::defer(EventFn fn) {
  // Monotone sequence numbers order same-time events FIFO, so this runs
  // after everything already queued at now() and before later arrivals.
  push_event(now_, nullptr, std::move(fn));
}

namespace {
Task<void> run_root(Task<void> inner, detail::ProcRef state) {
  try {
    co_await std::move(inner);
  } catch (...) {
    state->exception = std::current_exception();
  }
  state->done.fire();
}
}  // namespace

Process Engine::spawn(Task<void> task, std::string name) {
  MPATH_ASSERT_OWNER(owner_, "sim::Engine (spawn)");
  // Amortized reclamation: sweeping on a doubling watermark keeps spawn
  // O(1) amortized even when millions of short-lived processes are created
  // (every GPU stream operation is one).
  if (roots_.size() >= sweep_watermark_) {
    sweep_completed_roots();
    sweep_watermark_ = std::max<std::size_t>(1024, 2 * roots_.size());
  }
  if (proc_slab_ == nullptr) proc_slab_ = new detail::ProcSlab;
  detail::ProcRef state(proc_slab_->acquire(*this));
  Task<void> root = run_root(std::move(task), state);
  const auto handle = root.raw_handle();
  roots_.push_back(Root{std::move(root), state, std::move(name)});
  ++live_roots_;
  schedule_handle(now_, handle);
  return Process(std::move(state));
}

void Engine::sweep_completed_roots() {
  std::erase_if(roots_, [](const Root& r) {
    if (!r.task.done()) return false;
    // Keep unobserved failures so run() can report them.
    return !(r.state->exception && !r.state->observed);
  });
  std::size_t live = 0;
  for (const Root& r : roots_) {
    if (!r.task.done()) ++live;
  }
  live_roots_ = live;
}

void Engine::check_quiescence() const {
  std::size_t blocked = 0;
  std::string first_name;
  for (const Root& r : roots_) {
    if (!r.task.done()) {
      ++blocked;
      if (first_name.empty()) first_name = r.name.empty() ? "<anon>" : r.name;
    }
  }
  if (blocked > 0) {
    throw SimError("simulation deadlock: " + std::to_string(blocked) +
                   " process(es) still blocked at t=" + std::to_string(now_) +
                   " (first: " + first_name + ")");
  }
  for (const Root& r : roots_) {
    if (r.state->exception && !r.state->observed) {
      std::string name = r.name.empty() ? "<anon>" : r.name;
      try {
        std::rethrow_exception(r.state->exception);
      } catch (const std::exception& e) {
        throw SimError("unjoined process '" + name + "' failed: " + e.what());
      } catch (...) {
        throw SimError("unjoined process '" + name +
                       "' failed with a non-std exception");
      }
    }
  }
}

std::uint64_t Engine::run_impl(Time t_limit, bool bounded) {
  MPATH_ASSERT_OWNER(owner_, "sim::Engine (run)");
  std::uint64_t processed = 0;
  while (!heap_.empty()) {
    if (bounded && heap_.front().t > t_limit) {
      // Advance to the bound, but never move the clock backwards (a limit
      // in the past of the clock is a no-op).
      if (t_limit > now_) now_ = t_limit;
      return processed;
    }
    std::pop_heap(heap_.begin(), heap_.end(), EventLater{});
    const HeapEntry ev = heap_.back();
    heap_.pop_back();
    now_ = ev.t;
    const auto slot = static_cast<std::uint32_t>(ev.key & kSlotMask);
    // Move the payload out and recycle the slot *before* invoking: the
    // event may schedule new work, which can then reuse this slot.
    const std::coroutine_handle<> handle = slots_[slot].handle;
    EventFn callback = std::move(slots_[slot].callback);
    slots_[slot].handle = nullptr;
    slots_[slot].callback.reset();
    free_slots_.push_back(slot);
    if (handle) {
      handle.resume();
    } else {
      callback();
    }
    ++processed;
    if (tracer_ != nullptr && --trace_countdown_ == 0) {
      trace_countdown_ = trace_stride_;
      tracer_->add_counter("engine", "event_queue_depth", now_,
                           static_cast<double>(heap_.size()));
    }
  }
  sweep_completed_roots();
  check_quiescence();
  roots_.clear();
  return processed;
}

std::uint64_t Engine::run() {
  return run_impl(0.0, /*bounded=*/false);
}

std::uint64_t Engine::run_until(Time t_limit) {
  return run_impl(t_limit, /*bounded=*/true);
}

Task<void> when_all(Engine& engine, std::vector<Task<void>> tasks) {
  std::vector<Process> procs;
  procs.reserve(tasks.size());
  for (auto& t : tasks) {
    procs.push_back(engine.spawn(std::move(t)));
  }
  std::exception_ptr first_error;
  for (auto& p : procs) {
    try {
      co_await p.join();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mpath::sim
