#include "mpath/sim/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "mpath/sim/trace.hpp"
#include "mpath/util/rng.hpp"

namespace mpath::sim {

double FaultInjector::capture_baseline(LinkId link) {
  const auto it = baseline_.find(link);
  if (it != baseline_.end()) return it->second;
  const double cap = net_->link(link).capacity_bps;  // validates the id
  baseline_.emplace(link, cap);
  return cap;
}

double FaultInjector::baseline(LinkId link) const {
  const auto it = baseline_.find(link);
  if (it != baseline_.end()) return it->second;
  return net_->link(link).capacity_bps;
}

void FaultInjector::schedule(Time t, LinkId link, double bps) {
  if (t < engine_->now()) {
    throw std::invalid_argument("FaultInjector: event time is in the past");
  }
  if (bps < 0.0) {
    throw std::invalid_argument("FaultInjector: capacity must be >= 0");
  }
  ++scheduled_;
  engine_->schedule_callback(t, [this, link, bps] {
    net_->set_link_capacity(link, bps);
    applied_.push_back(Applied{engine_->now(), link, bps});
    if (tracer_ != nullptr) {
      tracer_->add_instant("faults",
                           net_->link(link).name + " -> " +
                               std::to_string(bps) + " B/s",
                           engine_->now());
    }
  });
}

void FaultInjector::set_capacity_at(Time t, LinkId link, double bps) {
  capture_baseline(link);
  schedule(t, link, bps);
}

void FaultInjector::degrade_at(Time t, LinkId link, double factor) {
  if (factor < 0.0) {
    throw std::invalid_argument("FaultInjector: degrade factor must be >= 0");
  }
  schedule(t, link, capture_baseline(link) * factor);
}

void FaultInjector::sever_at(Time t, LinkId link) { degrade_at(t, link, 0.0); }

void FaultInjector::restore_at(Time t, LinkId link) {
  schedule(t, link, capture_baseline(link));
}

void FaultInjector::flap(LinkId link, Time first_down, Time down_for,
                         Time up_for, int cycles) {
  if (down_for <= 0.0 || up_for <= 0.0) {
    throw std::invalid_argument("FaultInjector: flap periods must be > 0");
  }
  Time t = first_down;
  for (int c = 0; c < cycles; ++c) {
    sever_at(t, link);
    restore_at(t + down_for, link);
    t += down_for + up_for;
  }
}

void FaultInjector::random_plan(std::span<const LinkId> links,
                                const RandomPlanOptions& opts,
                                std::uint64_t seed) {
  if (links.empty()) {
    throw std::invalid_argument("FaultInjector: random plan needs links");
  }
  util::Rng rng(seed);
  for (int i = 0; i < opts.faults; ++i) {
    const LinkId link =
        links[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(links.size()) - 1))];
    const Time t = opts.start + rng.uniform(0.0, opts.horizon);
    const bool sever = rng.uniform(0.0, 1.0) < opts.sever_probability;
    const double factor =
        sever ? 0.0 : rng.uniform(opts.min_factor, opts.max_factor);
    degrade_at(t, link, factor);
    if (rng.uniform(0.0, 1.0) < opts.restore_probability) {
      restore_at(t + rng.uniform(opts.min_duration, opts.max_duration), link);
    }
  }
}

}  // namespace mpath::sim
