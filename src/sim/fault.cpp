#include "mpath/sim/fault.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "mpath/sim/trace.hpp"
#include "mpath/util/rng.hpp"

namespace mpath::sim {

double FaultInjector::capture_baseline(LinkId link) {
  const auto it = baseline_.find(link);
  if (it != baseline_.end()) return it->second;
  const double cap = net_->link(link).capacity_bps;  // validates the id
  baseline_.emplace(link, cap);
  return cap;
}

double FaultInjector::baseline(LinkId link) const {
  const auto it = baseline_.find(link);
  if (it != baseline_.end()) return it->second;
  return net_->link(link).capacity_bps;
}

void FaultInjector::schedule(Time t, LinkId link, double bps) {
  if (t < engine_->now()) {
    throw std::invalid_argument("FaultInjector: event time is in the past");
  }
  if (bps < 0.0) {
    throw std::invalid_argument("FaultInjector: capacity must be >= 0");
  }
  ++scheduled_;
  engine_->schedule_callback(t, [this, link, bps] {
    net_->set_link_capacity(link, bps);
    applied_.push_back(Applied{engine_->now(), link, bps});
    if (tracer_ != nullptr) {
      tracer_->add_instant("faults",
                           net_->link(link).name + " -> " +
                               std::to_string(bps) + " B/s",
                           engine_->now());
    }
    if (listener_) {
      listener_(applied_.back(), bps > 0.0 && bps == baseline(link));
    }
  });
}

void FaultInjector::set_capacity_at(Time t, LinkId link, double bps) {
  capture_baseline(link);
  schedule(t, link, bps);
}

void FaultInjector::degrade_at(Time t, LinkId link, double factor) {
  if (factor < 0.0) {
    throw std::invalid_argument("FaultInjector: degrade factor must be >= 0");
  }
  schedule(t, link, capture_baseline(link) * factor);
}

void FaultInjector::sever_at(Time t, LinkId link) { degrade_at(t, link, 0.0); }

void FaultInjector::restore_at(Time t, LinkId link) {
  schedule(t, link, capture_baseline(link));
}

void FaultInjector::flap(LinkId link, Time first_down, Time down_for,
                         Time up_for, int cycles) {
  if (down_for <= 0.0 || up_for <= 0.0) {
    throw std::invalid_argument("FaultInjector: flap periods must be > 0");
  }
  Time t = first_down;
  for (int c = 0; c < cycles; ++c) {
    sever_at(t, link);
    restore_at(t + down_for, link);
    t += down_for + up_for;
  }
}

void FaultInjector::random_plan(std::span<const LinkId> links,
                                const RandomPlanOptions& opts,
                                std::uint64_t seed) {
  if (links.empty()) {
    throw std::invalid_argument("FaultInjector: random plan needs links");
  }
  if (opts.idle_weight <= 0.0) {
    throw std::invalid_argument("FaultInjector: idle_weight must be > 0");
  }
  if (opts.min_factor < 0.0 || opts.max_factor < opts.min_factor) {
    throw std::invalid_argument("FaultInjector: bad degrade factor range");
  }
  if (opts.min_duration < 0.0 || opts.max_duration < opts.min_duration) {
    throw std::invalid_argument("FaultInjector: bad restore duration range");
  }
  for (LinkId l : links) capture_baseline(l);  // validates ids at call time
  // Fault *times* are fixed up front by the seed, but each fault's *target*
  // is drawn only when it fires, weighted by the links' utilization
  // (allocated/capacity) at that instant plus a floor of idle_weight — so
  // soaks preferentially stress the links actually carrying traffic while
  // idle links stay reachable. The RNG is shared across the plan's
  // callbacks and consumed in deterministic event order, so one seed still
  // yields one schedule.
  // The plan state is bundled behind one shared_ptr so each fault callback
  // captures {this, ctx} and stays inside EventFn's inline-storage budget.
  struct PlanCtx {
    util::Rng rng;
    std::vector<LinkId> targets;
    RandomPlanOptions opts;
    std::vector<double> cumulative;  // scratch, reused across faults
  };
  auto ctx = std::make_shared<PlanCtx>(
      PlanCtx{util::Rng(seed),
              std::vector<LinkId>(links.begin(), links.end()), opts, {}});
  for (int i = 0; i < opts.faults; ++i) {
    const Time t = opts.start + ctx->rng.uniform(0.0, opts.horizon);
    if (t < engine_->now()) {
      throw std::invalid_argument("FaultInjector: event time is in the past");
    }
    engine_->schedule_callback(t, [this, ctx] {
      double total = 0.0;
      ctx->cumulative.clear();
      ctx->cumulative.reserve(ctx->targets.size());
      for (LinkId l : ctx->targets) {
        const double cap = net_->link(l).capacity_bps;
        const double util =
            cap > 0.0 ? net_->link_allocated_rate(l) / cap : 0.0;
        total += ctx->opts.idle_weight + util;
        ctx->cumulative.push_back(total);
      }
      const double draw = ctx->rng.uniform(0.0, total);
      std::size_t pick = static_cast<std::size_t>(
          std::lower_bound(ctx->cumulative.begin(), ctx->cumulative.end(),
                           draw) -
          ctx->cumulative.begin());
      if (pick >= ctx->targets.size()) pick = ctx->targets.size() - 1;
      const LinkId link = ctx->targets[pick];
      const bool sever =
          ctx->rng.uniform(0.0, 1.0) < ctx->opts.sever_probability;
      const double factor =
          sever ? 0.0
                : ctx->rng.uniform(ctx->opts.min_factor, ctx->opts.max_factor);
      degrade_at(engine_->now(), link, factor);
      if (ctx->rng.uniform(0.0, 1.0) < ctx->opts.restore_probability) {
        restore_at(engine_->now() + ctx->rng.uniform(ctx->opts.min_duration,
                                                     ctx->opts.max_duration),
                   link);
      }
    });
  }
}

}  // namespace mpath::sim
